//! Bandwidth thresholding (§3.4).
//!
//! Two confidence thresholds `0 ≤ θL < θU < 1` split edge detections into
//! three intervals: below `θL` is the **discard** interval (likely false
//! positives), above `θU` the **keep** interval (assumed correct, not
//! verified), and in between the **validate** interval — "detections that
//! likely indicate the presence of an object of interest, but its label
//! might be incorrect". A frame travels to the cloud iff some query-class
//! detection lands in the validate interval.

use croesus_detect::Detection;
use croesus_video::LabelClass;

/// A `(θL, θU)` pair. The degenerate `θL == θU` pair is allowed (the paper
/// evaluates e.g. `(0.5, 0.5)`, which yields 0% bandwidth utilization).
///
/// ```
/// use croesus_core::{BandDecision, ThresholdPair};
/// let t = ThresholdPair::new(0.3, 0.7);
/// assert_eq!(t.classify(0.1), BandDecision::Discard);   // likely false positive
/// assert_eq!(t.classify(0.5), BandDecision::Validate);  // send to the cloud
/// assert_eq!(t.classify(0.9), BandDecision::Keep);      // assumed correct
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdPair {
    /// Lower threshold θL: detections below are discarded.
    pub lower: f64,
    /// Upper threshold θU: detections above are kept unverified.
    pub upper: f64,
}

impl ThresholdPair {
    /// Create a pair; panics unless `0 ≤ θL ≤ θU ≤ 1`.
    pub fn new(lower: f64, upper: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lower) && (0.0..=1.0).contains(&upper) && lower <= upper,
            "invalid threshold pair ({lower}, {upper})"
        );
        ThresholdPair { lower, upper }
    }

    /// Which band a confidence falls into.
    pub fn classify(&self, confidence: f64) -> BandDecision {
        if confidence < self.lower {
            BandDecision::Discard
        } else if confidence <= self.upper {
            BandDecision::Validate
        } else {
            BandDecision::Keep
        }
    }

    /// Decide a whole frame: partition its detections and determine
    /// whether the frame must be validated at the cloud. Only query-class
    /// detections drive the send decision (the optimization formulation is
    /// per object query `O`), but all non-discarded detections ride along
    /// once the frame is sent.
    pub fn decide_frame(&self, detections: &[Detection], query: &LabelClass) -> FrameDecision {
        let mut kept = Vec::new();
        let mut validate_band = Vec::new();
        let mut discarded = 0usize;
        let mut send = false;
        for d in detections {
            match self.classify(d.confidence) {
                BandDecision::Discard => discarded += 1,
                BandDecision::Validate => {
                    if d.is_class(query) {
                        send = true;
                    }
                    validate_band.push(d.clone());
                }
                BandDecision::Keep => kept.push(d.clone()),
            }
        }
        FrameDecision {
            send,
            kept,
            validate_band,
            discarded,
        }
    }

    /// The width of the validate interval.
    pub fn validate_width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Which interval a single detection's confidence lies in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandDecision {
    /// Below θL: likely false positive, dropped immediately.
    Discard,
    /// In `[θL, θU]`: needs cloud validation.
    Validate,
    /// Above θU: assumed correct, not verified.
    Keep,
}

/// The thresholding outcome for one frame.
#[derive(Clone, Debug)]
pub struct FrameDecision {
    /// Whether the frame is sent to the cloud.
    pub send: bool,
    /// Detections assumed correct (keep interval).
    pub kept: Vec<Detection>,
    /// Detections in the validate interval.
    pub validate_band: Vec<Detection>,
    /// Number of discarded detections.
    pub discarded: usize,
}

impl FrameDecision {
    /// The labels the edge acts on for this frame: keep + validate bands.
    /// (When the frame is not sent, the validate band is empty by
    /// construction of `send` for the query class, but other classes may
    /// linger — they are acted on optimistically.)
    pub fn surviving(&self) -> Vec<Detection> {
        let mut all = self.kept.clone();
        all.extend(self.validate_band.iter().cloned());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::BoundingBox;

    fn det(class: &str, conf: f64) -> Detection {
        Detection::new(class.into(), conf, BoundingBox::new(0.4, 0.4, 0.2, 0.2))
    }

    #[test]
    fn classify_bands() {
        let t = ThresholdPair::new(0.3, 0.7);
        assert_eq!(t.classify(0.1), BandDecision::Discard);
        assert_eq!(t.classify(0.3), BandDecision::Validate);
        assert_eq!(t.classify(0.5), BandDecision::Validate);
        assert_eq!(t.classify(0.7), BandDecision::Validate);
        assert_eq!(t.classify(0.71), BandDecision::Keep);
    }

    #[test]
    fn degenerate_pair_never_validates_a_frame() {
        // (0.5, 0.5): "the resulting BU is 0%" — only confidence exactly
        // 0.5 validates, which has measure zero for continuous confidences.
        let t = ThresholdPair::new(0.5, 0.5);
        assert_eq!(t.classify(0.49), BandDecision::Discard);
        assert_eq!(t.classify(0.51), BandDecision::Keep);
        assert_eq!(t.validate_width(), 0.0);
    }

    #[test]
    fn frame_sent_when_query_label_in_validate_band() {
        let t = ThresholdPair::new(0.3, 0.7);
        let d = t.decide_frame(&[det("car", 0.5)], &"car".into());
        assert!(d.send);
        assert_eq!(d.validate_band.len(), 1);
    }

    #[test]
    fn frame_not_sent_for_non_query_validate_labels() {
        let t = ThresholdPair::new(0.3, 0.7);
        let d = t.decide_frame(&[det("person", 0.5), det("car", 0.9)], &"car".into());
        assert!(
            !d.send,
            "only query-class detections drive the send decision"
        );
        assert_eq!(d.kept.len(), 1);
        assert_eq!(d.validate_band.len(), 1);
    }

    #[test]
    fn high_confidence_frames_stay_at_edge() {
        let t = ThresholdPair::new(0.3, 0.7);
        let d = t.decide_frame(&[det("car", 0.95), det("car", 0.8)], &"car".into());
        assert!(!d.send);
        assert_eq!(d.kept.len(), 2);
        assert_eq!(d.discarded, 0);
    }

    #[test]
    fn low_confidence_discarded_silently() {
        let t = ThresholdPair::new(0.3, 0.7);
        let d = t.decide_frame(&[det("car", 0.1), det("car", 0.2)], &"car".into());
        assert!(!d.send);
        assert_eq!(d.discarded, 2);
        assert!(d.surviving().is_empty());
    }

    #[test]
    fn surviving_merges_bands() {
        let t = ThresholdPair::new(0.3, 0.7);
        let d = t.decide_frame(&[det("car", 0.9), det("car", 0.5)], &"car".into());
        assert_eq!(d.surviving().len(), 2);
    }

    #[test]
    fn empty_frame_is_cheap() {
        let t = ThresholdPair::new(0.2, 0.4);
        let d = t.decide_frame(&[], &"car".into());
        assert!(!d.send);
        assert!(d.kept.is_empty() && d.validate_band.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid threshold pair")]
    fn inverted_pair_panics() {
        ThresholdPair::new(0.8, 0.2);
    }
}
