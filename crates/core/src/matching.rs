//! Final-stage label matching (§3.3.2, "Final Transaction Section").
//!
//! When the cloud labels for a frame arrive, each edge label is matched to
//! the overlapping cloud label (bigger overlap wins). Three cases follow:
//!
//! 1. no overlapping cloud label → the edge label was **erroneous**; the
//!    final section is called with an empty label;
//! 2. overlap and the *same* name → **correct**; the final section is
//!    called with the same label;
//! 3. overlap but a *different* name → **corrected**; the final section is
//!    called with the overlapping cloud label.
//!
//! Cloud labels no edge label matched trigger *fresh* initial+final
//! sections (the "second pattern" of §2.1).

use croesus_detect::{match_detections, Detection, MatchOutcome};

/// How one edge label fared against the cloud labels.
#[derive(Clone, Debug, PartialEq)]
pub enum LabelVerdict {
    /// Case 2: the edge label was right.
    Correct,
    /// Case 3: an object was there, but the name was wrong.
    Corrected(Detection),
    /// Case 1: nothing was there.
    Erroneous,
}

/// The input handed to a final section: what the initial section believed,
/// and what the cloud says (§3.2: "it is anticipated for the final section
/// to observe what the input labels were to the initial section ... and
/// what the initial section did").
#[derive(Clone, Debug)]
pub struct FinalInput {
    /// The edge label that triggered the transaction, if any (fresh
    /// transactions triggered by unmatched cloud labels have none).
    pub edge_label: Option<Detection>,
    /// The verdict for the edge label.
    pub verdict: LabelVerdict,
}

impl FinalInput {
    /// Input for a transaction whose edge label was confirmed.
    pub fn correct(edge: Detection) -> Self {
        FinalInput {
            edge_label: Some(edge),
            verdict: LabelVerdict::Correct,
        }
    }

    /// Input for a transaction kept at the edge without cloud validation —
    /// the keep interval assumes correctness.
    pub fn assumed_correct(edge: Detection) -> Self {
        FinalInput::correct(edge)
    }

    /// The label the final section should act on, if any: the corrected
    /// cloud label when there is one, otherwise the (confirmed) edge label.
    pub fn effective_label(&self) -> Option<&Detection> {
        match &self.verdict {
            LabelVerdict::Correct => self.edge_label.as_ref(),
            LabelVerdict::Corrected(cloud) => Some(cloud),
            LabelVerdict::Erroneous => None,
        }
    }

    /// Whether the initial section acted on a wrong trigger or input.
    pub fn was_wrong(&self) -> bool {
        !matches!(self.verdict, LabelVerdict::Correct)
    }
}

/// The outcome of matching one frame's edge labels against cloud labels.
#[derive(Clone, Debug)]
pub struct FrameMatch {
    /// Per edge label (parallel to the input), the final-section input.
    pub inputs: Vec<FinalInput>,
    /// Cloud labels with no edge counterpart: each triggers a fresh
    /// initial+final pair.
    pub missed: Vec<Detection>,
}

impl FrameMatch {
    /// Counts of (correct, corrected, erroneous) edge labels.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for i in &self.inputs {
            match i.verdict {
                LabelVerdict::Correct => c.0 += 1,
                LabelVerdict::Corrected(_) => c.1 += 1,
                LabelVerdict::Erroneous => c.2 += 1,
            }
        }
        c
    }
}

/// Match a frame's surviving edge labels against the cloud labels using
/// the configured overlap threshold (X% in the paper, 10% by default).
pub fn match_edge_to_cloud(
    edge_labels: &[Detection],
    cloud_labels: &[Detection],
    overlap_threshold: f64,
) -> FrameMatch {
    let m = match_detections(edge_labels, cloud_labels, overlap_threshold);
    let inputs = edge_labels
        .iter()
        .zip(&m.outcomes)
        .map(|(edge, outcome)| match outcome {
            MatchOutcome::Correct { .. } => FinalInput {
                edge_label: Some(edge.clone()),
                verdict: LabelVerdict::Correct,
            },
            MatchOutcome::Corrected { reference } => FinalInput {
                edge_label: Some(edge.clone()),
                verdict: LabelVerdict::Corrected(cloud_labels[*reference].clone()),
            },
            MatchOutcome::Erroneous => FinalInput {
                edge_label: Some(edge.clone()),
                verdict: LabelVerdict::Erroneous,
            },
        })
        .collect();
    let missed = m
        .unmatched_references
        .iter()
        .map(|&ri| cloud_labels[ri].clone())
        .collect();
    FrameMatch { inputs, missed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::BoundingBox;

    fn det(class: &str, conf: f64, x: f64) -> Detection {
        Detection::new(class.into(), conf, BoundingBox::new(x, 0.4, 0.2, 0.2))
    }

    #[test]
    fn all_three_cases_plus_missed() {
        let edge = vec![
            det("car", 0.8, 0.0), // matches cloud car at 0.02 → correct
            det("bus", 0.6, 0.3), // matches cloud car at 0.32 → corrected
            det("car", 0.5, 0.7), // no cloud counterpart → erroneous
        ];
        let cloud = vec![
            det("car", 0.95, 0.02),
            det("car", 0.9, 0.32),
            // No edge counterpart: placed in a different frame region.
            Detection::new("person".into(), 0.9, BoundingBox::new(0.55, 0.0, 0.2, 0.2)),
        ];
        let m = match_edge_to_cloud(&edge, &cloud, 0.10);
        assert_eq!(m.counts(), (1, 1, 1));
        assert_eq!(m.inputs[0].verdict, LabelVerdict::Correct);
        match &m.inputs[1].verdict {
            LabelVerdict::Corrected(c) => assert_eq!(c.class, "car".into()),
            other => panic!("expected corrected, got {other:?}"),
        }
        assert_eq!(m.inputs[2].verdict, LabelVerdict::Erroneous);
        // The person cloud label was never matched → fresh transaction.
        assert_eq!(m.missed.len(), 1);
        assert_eq!(m.missed[0].class, "person".into());
    }

    #[test]
    fn effective_label_per_verdict() {
        let e = det("car", 0.8, 0.1);
        let c = det("bus", 0.9, 0.1);
        assert_eq!(
            FinalInput::correct(e.clone())
                .effective_label()
                .unwrap()
                .class,
            "car".into()
        );
        let corrected = FinalInput {
            edge_label: Some(e.clone()),
            verdict: LabelVerdict::Corrected(c),
        };
        assert_eq!(corrected.effective_label().unwrap().class, "bus".into());
        assert!(corrected.was_wrong());
        let err = FinalInput {
            edge_label: Some(e),
            verdict: LabelVerdict::Erroneous,
        };
        assert!(err.effective_label().is_none());
        assert!(err.was_wrong());
    }

    #[test]
    fn assumed_correct_is_not_wrong() {
        let i = FinalInput::assumed_correct(det("car", 0.95, 0.1));
        assert!(!i.was_wrong());
    }

    #[test]
    fn empty_edge_set_reports_all_cloud_as_missed() {
        let cloud = vec![det("car", 0.9, 0.1), det("dog", 0.8, 0.6)];
        let m = match_edge_to_cloud(&[], &cloud, 0.10);
        assert!(m.inputs.is_empty());
        assert_eq!(m.missed.len(), 2);
    }

    #[test]
    fn empty_cloud_set_marks_all_edge_erroneous() {
        let edge = vec![det("car", 0.9, 0.1)];
        let m = match_edge_to_cloud(&edge, &[], 0.10);
        assert_eq!(m.counts(), (0, 0, 1));
        assert!(m.missed.is_empty());
    }
}
