//! The `Croesus` system builder — the one entry point for every deployment.
//!
//! The paper evaluates one system under many configurations: the
//! multi-stage pipeline (Figure 1) under MS-IA or MS-SR, the edge-only and
//! cloud-only baselines of §5, one or many edge nodes, different videos,
//! validation policies and codecs. This module expresses all of them as a
//! [`CroesusBuilder`] producing a [`Deployment`] whose
//! [`run`](Deployment::run) yields the [`RunMetrics`] the figures are
//! built from:
//!
//! ```
//! use croesus_core::{Croesus, DeploymentMode, ProtocolKind};
//! use croesus_core::ThresholdPair;
//! use croesus_video::VideoPreset;
//!
//! let metrics = Croesus::builder()
//!     .preset(VideoPreset::StreetTraffic)
//!     .thresholds(ThresholdPair::new(0.4, 0.6))
//!     .protocol(ProtocolKind::MsIa)
//!     .edges(1)
//!     .frames(40)
//!     .build()
//!     .run();
//! assert!(metrics.transactions_committed > 0);
//! ```
//!
//! Durability is a builder switch too:
//! [`durability`](CroesusBuilder::durability) gives every edge node its
//! own write-ahead log (`edge-<i>.wal` under the chosen directory), so a
//! crashed edge can rebuild its partition and retract-with-apologies the
//! transactions whose final sections died with it (see
//! `croesus_txn::recovery`). Off by default — a durability-off run is
//! byte-identical with the pre-WAL system.

use std::sync::Arc;

use croesus_detect::{score_against, Detection, ModelProfile, SimulatedModel};
use croesus_net::BandwidthMeter;
use croesus_obs::{EdgeObs, Obs};
use croesus_sim::{DetRng, FaultPlan};
use croesus_store::{KvStore, LockManager};
use croesus_txn::{ExecutorCore, ProtocolKind};
use croesus_video::{LabelClass, VideoPreset};
use croesus_wal::{DurabilityMode, SyncCoalescer};

use crate::bank::TransactionsBank;
use crate::baseline::EDGE_BASELINE_CONFIDENCE;
use crate::cloud::CloudNode;
use crate::config::{CroesusConfig, ValidationPolicy};
use crate::edge::EdgeNode;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::pipeline::evaluation_bank;
use crate::threshold::ThresholdPair;

/// What the deployment runs: the multi-stage pipeline or one of the §5
/// baselines. Baselines are deployments too — they share the edge node,
/// the transactions bank and the protocol plumbing, differing only in
/// which frames travel where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeploymentMode {
    /// The Croesus pipeline of Figure 1: edge detection, thresholding,
    /// initial commit, cloud validation, final commit.
    MultiStage,
    /// "A performance-centric video analytics application" — edge model
    /// only, single-stage commits, no cloud traffic.
    EdgeOnly,
    /// "An accuracy-centric video analytics application" — every frame
    /// crosses the edge→cloud link and waits for the big model.
    CloudOnly,
}

/// The Croesus system. Start with [`Croesus::builder`].
pub struct Croesus;

impl Croesus {
    /// A builder with the paper's defaults: street-traffic video,
    /// `(0.4, 0.6)` thresholds, MS-IA, one edge node, multi-stage mode.
    #[must_use]
    pub fn builder() -> CroesusBuilder {
        CroesusBuilder::default()
    }

    /// The multi-stage pipeline for an existing configuration.
    #[must_use]
    pub fn multistage(config: &CroesusConfig) -> Deployment {
        Croesus::builder().config(config.clone()).build()
    }

    /// The edge-only baseline for an existing configuration.
    #[must_use]
    pub fn edge_only(config: &CroesusConfig) -> Deployment {
        Croesus::builder()
            .config(config.clone())
            .mode(DeploymentMode::EdgeOnly)
            .build()
    }

    /// The cloud-only baseline for an existing configuration.
    #[must_use]
    pub fn cloud_only(config: &CroesusConfig) -> Deployment {
        Croesus::builder()
            .config(config.clone())
            .mode(DeploymentMode::CloudOnly)
            .build()
    }
}

/// Builder for a [`Deployment`].
#[derive(Clone, Debug)]
pub struct CroesusBuilder {
    config: CroesusConfig,
    protocol: ProtocolKind,
    mode: DeploymentMode,
    edges: usize,
    workers: usize,
    durability: DurabilityMode,
    faults: FaultPlan,
    failover: bool,
    heartbeat_timeout: u64,
    obs: Option<Arc<Obs>>,
}

/// The default per-edge worker count: 1 (inline, byte-identical with the
/// historic single-threaded pipeline) unless the `CROESUS_WORKERS`
/// environment variable overrides it — which is how CI runs the whole
/// tier-1 suite under a wave-parallel runtime without touching any test.
fn default_workers() -> usize {
    std::env::var("CROESUS_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The default durability mode: disabled (byte-identical with the
/// pre-durability pipeline) unless the `CROESUS_WAL_PIPELINED`
/// environment variable turns the pipelined writer on — which is how CI
/// runs the whole tier-1 suite over the pipelined WAL without touching
/// any test. An explicit [`CroesusBuilder::durability`] call always
/// wins over the knob, so tests that pin a mode (including `Disabled`)
/// keep it.
fn default_durability() -> DurabilityMode {
    match std::env::var("CROESUS_WAL_PIPELINED") {
        Ok(v) if !v.is_empty() && v != "0" => {
            DurabilityMode::pipelined(croesus_wal::scratch_dir("pipelined-env"))
        }
        _ => DurabilityMode::Disabled,
    }
}

impl Default for CroesusBuilder {
    fn default() -> Self {
        CroesusBuilder {
            config: CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.4, 0.6)),
            protocol: ProtocolKind::MsIa,
            mode: DeploymentMode::MultiStage,
            edges: 1,
            workers: default_workers(),
            durability: default_durability(),
            faults: FaultPlan::new(),
            failover: false,
            heartbeat_timeout: 3,
            obs: None,
        }
    }
}

impl CroesusBuilder {
    /// The video preset to process.
    #[must_use]
    pub fn preset(mut self, preset: VideoPreset) -> Self {
        self.config.preset = preset;
        self
    }

    /// Bandwidth thresholds `(θL, θU)` (§3.4); switches validation to
    /// [`ValidationPolicy::Thresholds`].
    #[must_use]
    pub fn thresholds(mut self, pair: ThresholdPair) -> Self {
        self.config.validation = ValidationPolicy::Thresholds(pair);
        self
    }

    /// The consistency protocol transactions run under.
    #[must_use]
    pub fn protocol(mut self, kind: ProtocolKind) -> Self {
        self.protocol = kind;
        self
    }

    /// Pipeline or baseline.
    #[must_use]
    pub fn mode(mut self, mode: DeploymentMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of edge nodes; frames are routed round-robin and each edge
    /// owns its partition of the data (§4.5). Panics if `n == 0`.
    #[must_use]
    pub fn edges(mut self, n: usize) -> Self {
        assert!(n >= 1, "a deployment needs at least one edge node");
        self.edges = n;
        self
    }

    /// Worker threads per edge node: each `Sequencer::waves` wave of
    /// initial sections executes across this many threads (§5.2.4 —
    /// "within a wave the runner may parallelize freely"). The default of
    /// 1 is the inline, thread-free path, byte-identical with the historic
    /// single-threaded pipeline (a standing contract, see ROADMAP.md);
    /// `workers(n)` keeps the same deterministic outcomes — txn ids are
    /// assigned in wave submission order and wait-die conflicts depend
    /// only on ids — while spreading wave execution over `n` threads.
    /// Panics if `n == 0`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a deployment needs at least one worker per edge");
        self.workers = n;
        self
    }

    /// Number of frames to generate.
    #[must_use]
    pub fn frames(mut self, n: u64) -> Self {
        self.config.num_frames = n;
        self
    }

    /// Experiment seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The cloud model.
    #[must_use]
    pub fn cloud_model(mut self, kind: croesus_detect::ModelKind) -> Self {
        self.config.cloud_model = kind;
        self
    }

    /// Deployment setup (edge machine class and colocation).
    #[must_use]
    pub fn setup(mut self, setup: croesus_net::Setup) -> Self {
        self.config.setup = setup;
        self
    }

    /// Frame validation policy.
    #[must_use]
    pub fn validation(mut self, policy: ValidationPolicy) -> Self {
        self.config.validation = policy;
        self
    }

    /// Payload encoding for edge→cloud transfers.
    #[must_use]
    pub fn codec(mut self, codec: croesus_net::PayloadCodec) -> Self {
        self.config.codec = codec;
        self
    }

    /// Probability that a validated frame's cloud labels never arrive.
    #[must_use]
    pub fn cloud_loss(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0,1]");
        self.config.cloud_loss_rate = rate;
        self
    }

    /// Durability for the edge datastores: every edge logs its stages to
    /// its own write-ahead log (`edge-<i>.wal` under the mode's
    /// directory) through the shared `ExecutorCore` hook, whatever the
    /// protocol. Off by default. Each `run()` opens *fresh* logs — to
    /// recover a previous run's logs, replay them first with
    /// `croesus_txn::recovery::recover_edge_file`.
    #[must_use]
    pub fn durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }

    /// Attach an observability collector: every edge's executor, WAL and
    /// the fleet loop emit typed [`croesus_obs::Event`]s into the
    /// collector's per-edge streams, and the latency histograms fill in.
    /// Off by default — an unobserved run takes the exact same code paths
    /// with a single `Option`-is-`None` branch at each emission site, so
    /// the golden pins stay byte-identical.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use croesus_core::Croesus;
    ///
    /// let obs = croesus_obs::Obs::shared();
    /// Croesus::builder()
    ///     .frames(30)
    ///     .observe(Arc::clone(&obs))
    ///     .build()
    ///     .run();
    /// croesus_obs::check_obs(&obs).expect("the trace obeys the ordering contract");
    /// ```
    #[must_use]
    pub fn observe(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replace the whole run configuration (protocol/mode/edges are kept).
    #[must_use]
    pub fn config(mut self, config: CroesusConfig) -> Self {
        self.config = config;
        self
    }

    /// Fault schedule for chaos runs ([`Deployment::run_fleet`]): scripted
    /// or seeded kill/stall/partition/resurrect events against individual
    /// edges. Empty by default (the fault-free control run).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enable edge→cloud failover: the cloud tails every edge's shipped
    /// WAL and takes over a dead edge's partition once the failure
    /// detector times it out. Requires durability — [`build`] rejects the
    /// combination with `durability(Disabled)`, because without a WAL
    /// there is nothing to ship and the replica would take over from
    /// nothing, silently dropping every committed write.
    ///
    /// [`build`]: CroesusBuilder::build
    #[must_use]
    pub fn failover(mut self, on: bool) -> Self {
        self.failover = on;
        self
    }

    /// Frames without a heartbeat before an edge is declared dead
    /// (failure detection is frame-synchronous). Panics on 0 — a zero
    /// timeout deposes every edge at the first missed beat, including
    /// ones that were merely scheduled after a busy frame.
    #[must_use]
    pub fn heartbeat_timeout(mut self, frames: u64) -> Self {
        assert!(
            frames >= 1,
            "the heartbeat timeout must be at least one frame"
        );
        self.heartbeat_timeout = frames;
        self
    }

    /// Build the deployment.
    #[must_use]
    pub fn build(self) -> Deployment {
        assert!(
            !self.failover || self.durability.is_enabled(),
            "failover requires durability: the cloud replica takes over from the \
             edge's shipped WAL, and durability(Disabled) ships nothing — enable a \
             durability mode or drop failover(true)"
        );
        Deployment {
            config: self.config,
            protocol: self.protocol,
            mode: self.mode,
            edges: self.edges,
            workers: self.workers,
            coalescer: self.durability.device_coalescer(),
            durability: self.durability,
            faults: self.faults,
            failover: self.failover,
            heartbeat_timeout: self.heartbeat_timeout,
            obs: self.obs,
        }
    }
}

/// A configured Croesus deployment, ready to run.
#[derive(Clone, Debug)]
pub struct Deployment {
    pub(crate) config: CroesusConfig,
    pub(crate) protocol: ProtocolKind,
    pub(crate) mode: DeploymentMode,
    pub(crate) edges: usize,
    pub(crate) workers: usize,
    pub(crate) durability: DurabilityMode,
    /// One sync window per deployment when the durability mode coalesces:
    /// every edge's flusher shares it (they share the log directory,
    /// hence a storage device).
    pub(crate) coalescer: Option<Arc<SyncCoalescer>>,
    pub(crate) faults: FaultPlan,
    pub(crate) failover: bool,
    pub(crate) heartbeat_timeout: u64,
    pub(crate) obs: Option<Arc<Obs>>,
}

impl Deployment {
    /// The run configuration.
    pub fn config(&self) -> &CroesusConfig {
        &self.config
    }

    /// The consistency protocol transactions run under.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Pipeline or baseline.
    pub fn mode(&self) -> DeploymentMode {
        self.mode
    }

    /// Number of edge nodes.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Worker threads per edge node (1 = inline execution).
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// The durability mode.
    pub fn durability(&self) -> &DurabilityMode {
        &self.durability
    }

    /// Frames without a heartbeat before an edge is declared dead.
    pub fn heartbeat_timeout(&self) -> u64 {
        self.heartbeat_timeout
    }

    /// The attached observability collector, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// The emission handle for edge `i`: the collector's persistent
    /// per-edge stream when observing, the no-op handle otherwise.
    pub(crate) fn edge_obs(&self, i: usize) -> EdgeObs {
        self.obs
            .as_ref()
            .map_or_else(EdgeObs::disabled, |o| o.edge(i))
    }

    /// Build the edge fleet: each edge owns its own store, lock manager
    /// and protocol executor (its partition of the data, §4.5).
    /// `edge_hardware` applies the setup's edge machine class to inference
    /// latency — false for the cloud baseline, where detection happens at
    /// the cloud and the edge model is only a datastore placeholder.
    fn build_edges(&self, bank: &Arc<TransactionsBank>, edge_hardware: bool) -> Vec<EdgeNode> {
        let cfg = &self.config;
        (0..self.edges)
            .map(|i| {
                // Every edge runs the same deployed model (same seed →
                // identical detections however frames are routed); only the
                // workload RNG is salted per edge. Edge 0 keeps the
                // historical seeds so single-edge runs are byte-identical
                // with the pre-builder pipeline.
                let salt = (i as u64) << 48;
                let mut model = SimulatedModel::new(ModelProfile::tiny_yolov3(), cfg.seed ^ 0xE);
                if edge_hardware {
                    model = model.with_hardware_factor(cfg.setup.edge.hardware_factor());
                }
                let eobs = self.edge_obs(i);
                let mut core = ExecutorCore::new(
                    Arc::new(KvStore::new()),
                    Arc::new(LockManager::new(self.protocol.default_lock_policy())),
                )
                .with_obs(eobs.clone());
                if let Some(wal) = self
                    .durability
                    .open_edge_wal_with(i, self.coalescer.clone())
                    .expect("durability directory must be creatable and writable")
                {
                    wal.set_obs(eobs);
                    core = core.with_wal(Arc::new(wal));
                }
                EdgeNode::with_protocol(
                    model,
                    Arc::clone(bank),
                    cfg.overlap_threshold,
                    cfg.seed ^ salt,
                    self.protocol.build(core),
                )
                .with_worker_pool(croesus_txn::WorkerPool::new(self.workers))
            })
            .collect()
    }

    /// Clean shutdown: push every edge's WAL durability boundary over the
    /// group-commit tail. (A *crash* is exactly the absence of this call —
    /// the unsynced tail is the loss window group commit trades away.)
    fn flush_wals(edges: &[EdgeNode]) {
        for edge in edges {
            if let Some(wal) = edge.protocol().core().wal() {
                wal.flush().expect("WAL flush at shutdown failed");
            }
        }
    }

    fn label(&self, base: String) -> String {
        let mut label = base;
        if self.protocol != ProtocolKind::MsIa {
            label.push_str(&format!(" [{}]", self.protocol.paper_name()));
        }
        if self.edges > 1 {
            label.push_str(&format!(" [{} edges]", self.edges));
        }
        label
    }

    /// Run the deployment over its video; returns the metrics the paper's
    /// figures are built from.
    pub fn run(&self) -> RunMetrics {
        match self.mode {
            DeploymentMode::MultiStage => self.run_multistage(),
            DeploymentMode::EdgeOnly => self.run_edge_only(),
            DeploymentMode::CloudOnly => self.run_cloud_only(),
        }
    }

    /// The Croesus execution pattern of Figure 1. For every frame:
    /// client→edge transfer, small-model detection, thresholding, initial
    /// transaction sections (initial commit → response), then — for
    /// validated frames — edge→cloud transfer, big-model detection, label
    /// matching and final sections (final commit); unvalidated frames
    /// finalize locally.
    fn run_multistage(&self) -> RunMetrics {
        let config = &self.config;
        let video = config.preset.generate(config.num_frames, config.seed);
        let query: LabelClass = video.query_class().clone();

        let bank = evaluation_bank();
        let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
        let edges = self.build_edges(&bank, true);
        let topology = config.setup.topology();
        let mut link_rng = DetRng::new(config.seed).fork_named("links");

        let mut meter = BandwidthMeter::new();
        let mut collector = MetricsCollector::new();

        for frame in video.frames() {
            let edge = &edges[(frame.index as usize) % self.edges];
            meter.record_processed();
            let edge_link = topology
                .client_edge
                .transfer_latency(frame.bytes, &mut link_rng);
            let (detections, edge_detect) = edge.detect(frame);

            // Thresholding / validation decision.
            let (send, surviving, kept_query): (bool, Vec<Detection>, Vec<Detection>) =
                match config.validation {
                    ValidationPolicy::Thresholds(pair) => {
                        let d = pair.decide_frame(&detections, &query);
                        let kept_query = d
                            .kept
                            .iter()
                            .filter(|l| l.is_class(&query))
                            .cloned()
                            .collect();
                        (d.send, d.surviving(), kept_query)
                    }
                    ValidationPolicy::ForcedBu(bu) => {
                        let surviving: Vec<Detection> = detections
                            .iter()
                            .filter(|d| d.confidence >= config.low_confidence_filter)
                            .cloned()
                            .collect();
                        let kept_query = surviving
                            .iter()
                            .filter(|l| l.is_class(&query))
                            .cloned()
                            .collect();
                        (
                            ValidationPolicy::forced_send(bu, frame.index),
                            surviving,
                            kept_query,
                        )
                    }
                };

            // Initial stage: trigger transactions, commit initial sections.
            let initial = edge.run_initial_stage(frame.index, &surviving);
            collector.record_transactions(initial.committed);

            // The cloud reference is always computed for scoring; its
            // latency and bandwidth are only charged when the frame is
            // actually sent.
            let (cloud_labels, cloud_detect) = cloud.process(frame);
            let cloud_query: Vec<Detection> = cloud_labels
                .iter()
                .filter(|l| l.is_class(&query))
                .cloned()
                .collect();

            // A validated frame's labels can be lost to a cloud outage; the
            // frame then times out and finalizes locally.
            let lost = send && link_rng.bernoulli(config.cloud_loss_rate);

            let final_labels: Vec<Detection> = if send && !lost {
                let is_reference = frame.index.is_multiple_of(30);
                let encoded = config.codec.encode(frame.bytes, is_reference);
                let up = topology
                    .edge_cloud
                    .transfer_latency(encoded.bytes, &mut link_rng)
                    + encoded.encode_latency;
                // Labels travel back as a small payload (propagation-bound).
                let down = topology.edge_cloud.transfer_latency(2_048, &mut link_rng);
                let fin = edge.deliver_cloud_labels(frame.index, &cloud_labels);
                meter.record_sent(
                    encoded.bytes,
                    topology.edge_cloud.transfer_cost(encoded.bytes),
                );
                collector.record_validated_frame(
                    edge_link,
                    edge_detect,
                    initial.txn_latency,
                    up + down,
                    cloud_detect,
                    fin.txn_latency,
                );
                let (correct, corrected, erroneous, missed) = fin.counts;
                collector.record_corrections(correct, corrected, erroneous, missed);
                cloud_query.clone()
            } else if lost {
                // The frame and its bytes were sent, but no labels came
                // back: after the timeout the edge finalizes with its own
                // labels. The multi-stage guarantee holds — every
                // initially-committed transaction still finally commits,
                // with the guess retained.
                let is_reference = frame.index.is_multiple_of(30);
                let encoded = config.codec.encode(frame.bytes, is_reference);
                meter.record_sent(
                    encoded.bytes,
                    topology.edge_cloud.transfer_cost(encoded.bytes),
                );
                let fin = edge.finalize_local(frame.index);
                collector.record_validated_frame(
                    edge_link,
                    edge_detect,
                    initial.txn_latency,
                    croesus_sim::SimDuration::from_millis_f64(config.cloud_timeout_ms),
                    croesus_sim::SimDuration::ZERO,
                    fin.txn_latency,
                );
                collector.record_cloud_timeout();
                let (correct, corrected, erroneous, missed) = fin.counts;
                collector.record_corrections(correct, corrected, erroneous, missed);
                // The client keeps every surviving edge label (keep +
                // validate bands): nothing was corrected.
                surviving
                    .iter()
                    .filter(|l| l.is_class(&query))
                    .cloned()
                    .collect()
            } else {
                let fin = edge.finalize_local(frame.index);
                collector.record_edge_frame(
                    edge_link,
                    edge_detect,
                    initial.txn_latency,
                    fin.txn_latency,
                );
                let (correct, corrected, erroneous, missed) = fin.counts;
                collector.record_corrections(correct, corrected, erroneous, missed);
                kept_query
            };

            collector.record_accuracy(score_against(
                &final_labels,
                &cloud_query,
                &query,
                config.overlap_threshold,
            ));

            // Settle-and-prune: this frame is fully finalized on its edge,
            // so at quiescence the retractable entries (and their WAL
            // shadow mirror) are dropped — an unbounded run no longer
            // accumulates apology state for transactions that can never be
            // retraction roots again.
            edge.settle();
        }

        let base = match config.validation {
            ValidationPolicy::Thresholds(pair) => format!(
                "croesus {} ({:.1},{:.1})",
                config.preset.paper_id(),
                pair.lower,
                pair.upper
            ),
            ValidationPolicy::ForcedBu(bu) => {
                format!("croesus {} bu={:.0}%", config.preset.paper_id(), bu * 100.0)
            }
        };
        Self::flush_wals(&edges);
        collector.finish(self.label(base), &meter)
    }

    /// The edge-only baseline of §5: single-stage commits with the edge
    /// model's labels, no cloud traffic.
    fn run_edge_only(&self) -> RunMetrics {
        let config = &self.config;
        let video = config.preset.generate(config.num_frames, config.seed);
        let query: LabelClass = video.query_class().clone();
        let bank = evaluation_bank();
        let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
        let edges = self.build_edges(&bank, true);
        let topology = config.setup.topology();
        let mut link_rng = DetRng::new(config.seed).fork_named("links");

        let mut meter = BandwidthMeter::new();
        let mut collector = MetricsCollector::new();

        for frame in video.frames() {
            let edge = &edges[(frame.index as usize) % self.edges];
            meter.record_processed();
            let edge_link = topology
                .client_edge
                .transfer_latency(frame.bytes, &mut link_rng);
            let (detections, edge_detect) = edge.detect(frame);
            let surviving: Vec<Detection> = detections
                .into_iter()
                .filter(|d| d.confidence >= EDGE_BASELINE_CONFIDENCE)
                .collect();
            let initial = edge.run_initial_stage(frame.index, &surviving);
            collector.record_transactions(initial.committed);
            // Single-stage: finalize immediately with the edge labels.
            let fin = edge.finalize_local(frame.index);
            collector.record_edge_frame(
                edge_link,
                edge_detect,
                initial.txn_latency,
                fin.txn_latency,
            );

            // Score against the cloud reference (computed, never paid for).
            let (cloud_labels, _) = cloud.process(frame);
            let cloud_query: Vec<Detection> = cloud_labels
                .into_iter()
                .filter(|l| l.is_class(&query))
                .collect();
            let edge_query: Vec<Detection> = surviving
                .into_iter()
                .filter(|l| l.is_class(&query))
                .collect();
            collector.record_accuracy(score_against(
                &edge_query,
                &cloud_query,
                &query,
                config.overlap_threshold,
            ));
            edge.settle();
        }
        Self::flush_wals(&edges);
        collector.finish(
            self.label(format!("edge-only {}", config.preset.paper_id())),
            &meter,
        )
    }

    /// The cloud-only baseline of §5 (optionally with compression /
    /// difference pre-processing at the edge): transactions trigger only
    /// after the accurate labels arrive.
    fn run_cloud_only(&self) -> RunMetrics {
        let config = &self.config;
        let video = config.preset.generate(config.num_frames, config.seed);
        let query: LabelClass = video.query_class().clone();
        let bank = evaluation_bank();
        let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
        // The cloud baseline still needs edge datastores for its
        // transactions: the data lives at the edge partitions. (No
        // hardware factor — detection happens at the cloud.)
        let edges = self.build_edges(&bank, false);
        let topology = config.setup.topology();
        let mut link_rng = DetRng::new(config.seed).fork_named("links");

        let mut meter = BandwidthMeter::new();
        let mut collector = MetricsCollector::new();

        for frame in video.frames() {
            let edge = &edges[(frame.index as usize) % self.edges];
            meter.record_processed();
            let edge_link = topology
                .client_edge
                .transfer_latency(frame.bytes, &mut link_rng);
            let is_reference = frame.index.is_multiple_of(30);
            let encoded = config.codec.encode(frame.bytes, is_reference);
            let up = topology
                .edge_cloud
                .transfer_latency(encoded.bytes, &mut link_rng)
                + encoded.encode_latency;
            let down = topology.edge_cloud.transfer_latency(2_048, &mut link_rng);
            let (cloud_labels, cloud_detect) = cloud.process(frame);
            meter.record_sent(
                encoded.bytes,
                topology.edge_cloud.transfer_cost(encoded.bytes),
            );

            // Transactions trigger only after the accurate labels arrive;
            // both sections run back-to-back with the correct input.
            let cloud_query: Vec<Detection> = cloud_labels
                .iter()
                .filter(|l| l.is_class(&query))
                .cloned()
                .collect();
            let initial = edge.run_initial_stage(frame.index, &cloud_labels);
            collector.record_transactions(initial.committed);
            let fin = edge.finalize_local(frame.index);

            collector.record_validated_frame(
                edge_link,
                croesus_sim::SimDuration::ZERO,
                initial.txn_latency,
                up + down,
                cloud_detect,
                fin.txn_latency,
            );
            // By the ground-truth convention, cloud output scores perfectly.
            collector.record_accuracy(score_against(
                &cloud_query,
                &cloud_query,
                &query,
                config.overlap_threshold,
            ));
            edge.settle();
        }
        Self::flush_wals(&edges);
        collector.finish(
            self.label(format!(
                "cloud-only{} {}",
                config.codec.label(),
                config.preset.paper_id()
            )),
            &meter,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CroesusBuilder {
        Croesus::builder().frames(60)
    }

    #[test]
    fn builder_defaults_match_paper() {
        let d = Croesus::builder().build();
        assert_eq!(d.protocol(), ProtocolKind::MsIa);
        assert_eq!(d.mode(), DeploymentMode::MultiStage);
        assert_eq!(d.num_edges(), 1);
        assert_eq!(d.config().num_frames, 300);
    }

    #[test]
    fn builder_matches_legacy_pipeline_exactly() {
        // The durability-off contract: a single-edge MS-IA builder run is
        // byte-identical with the historical `run_croesus` pipeline. The
        // legacy shim is gone, so the pin is its captured output for this
        // exact configuration (any drift here is a behaviour change).
        let cfg = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
            .with_frames(60);
        let a = Croesus::multistage(&cfg).run();
        assert_eq!(a.f_score, 0.922_779_922_779_922_8);
        assert_eq!(a.bytes_sent, 7_500_000);
        assert_eq!(a.transactions_committed, 284);
        assert_eq!(a.bandwidth_utilization, 0.833_333_333_333_333_4);
        assert_eq!(a.label, "croesus v2 (0.3,0.7)");
        // Explicitly disabled durability is the very same code path.
        let b = Croesus::builder()
            .config(cfg)
            .durability(DurabilityMode::Disabled)
            .build()
            .run();
        assert_eq!(a.f_score, b.f_score);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.transactions_committed, b.transactions_committed);
        assert_eq!(a.label, b.label);
    }

    /// The wave-parallel runtime contract: `workers(n)` preserves every
    /// pipeline metric — the deterministic wave execution (pre-assigned
    /// txn ids, submission-order results, id-only wait-die) makes the
    /// worker count an implementation detail of wall-clock speed, never
    /// of outcomes. `workers(1)` is the inline path, so its half of this
    /// test is the golden byte-identity pin restated.
    #[test]
    fn worker_count_does_not_perturb_the_pipeline() {
        let cfg = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
            .with_frames(60);
        for kind in ProtocolKind::ALL {
            let one = Croesus::builder()
                .config(cfg.clone())
                .protocol(kind)
                .workers(1)
                .build()
                .run();
            let four = Croesus::builder()
                .config(cfg.clone())
                .protocol(kind)
                .workers(4)
                .build()
                .run();
            assert_eq!(one.f_score, four.f_score, "{kind}");
            assert_eq!(one.bytes_sent, four.bytes_sent, "{kind}");
            assert_eq!(
                one.transactions_committed, four.transactions_committed,
                "{kind}"
            );
            assert_eq!(one.corrections, four.corrections, "{kind}");
            assert_eq!(
                one.bandwidth_utilization, four.bandwidth_utilization,
                "{kind}"
            );
        }
        // And workers(1) against the golden pins directly (MS-IA default).
        let pinned = Croesus::builder().config(cfg).workers(1).build().run();
        assert_eq!(pinned.f_score, 0.922_779_922_779_922_8);
        assert_eq!(pinned.bytes_sent, 7_500_000);
        assert_eq!(pinned.transactions_committed, 284);
    }

    /// A wave-parallel observed run still satisfies the obs ordering
    /// contract: per-worker emission shares the per-edge ring whose seq is
    /// allocated under the ring lock, so ring order == seq order from any
    /// thread.
    #[test]
    fn pooled_run_passes_the_ordering_contract() {
        let obs = croesus_obs::Obs::shared();
        let m = quick().workers(4).observe(Arc::clone(&obs)).build().run();
        assert!(m.transactions_committed > 0);
        croesus_obs::check_obs(&obs).expect("workers(4) trace obeys the contract");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Croesus::builder().workers(0);
    }

    #[test]
    fn durability_does_not_perturb_the_pipeline() {
        let dir = croesus_wal::scratch_dir("system-durability");
        let off = quick().build().run();
        let on = quick()
            .durability(DurabilityMode::group_commit(&dir))
            .build()
            .run();
        assert_eq!(off.f_score, on.f_score);
        assert_eq!(off.bytes_sent, on.bytes_sent);
        assert_eq!(off.transactions_committed, on.transactions_committed);
        assert_eq!(off.corrections, on.corrections);
        // The log replays to a fully-finalized edge: every initially
        // committed transaction finally committed, so recovery owes no
        // apologies after a clean run.
        let rec = croesus_txn::recovery::recover_edge_file(dir.join("edge-0.wal")).unwrap();
        assert!(rec.frames > 0, "the WAL saw the run");
        assert!(rec.unfinalized.is_empty());
        assert!(rec.apologies_owed().is_empty());
        assert!(!rec.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_protocol_logs_through_the_same_hook() {
        for kind in ProtocolKind::ALL {
            let dir = croesus_wal::scratch_dir("system-durability-proto");
            let m = quick()
                .protocol(kind)
                .durability(DurabilityMode::Strict { dir: dir.clone() })
                .build()
                .run();
            assert!(m.transactions_committed > 0, "{kind}");
            let rec = croesus_txn::recovery::recover_edge_file(dir.join("edge-0.wal")).unwrap();
            assert!(rec.frames > 0, "{kind}: stages were logged");
            assert!(rec.unfinalized.is_empty(), "{kind}: clean run");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn multi_edge_deployment_logs_one_wal_per_edge() {
        let dir = croesus_wal::scratch_dir("system-durability-edges");
        let mode = DurabilityMode::group_commit(&dir);
        let m = quick().edges(3).durability(mode.clone()).build().run();
        assert!(m.transactions_committed > 0);
        let mut edges_with_frames = 0;
        for i in 0..3 {
            let path = mode.edge_log_path(i).unwrap();
            assert!(path.exists(), "edge {i} has its own log");
            let rec = croesus_txn::recovery::recover_edge_file(&path).unwrap();
            assert!(rec.unfinalized.is_empty(), "edge {i}");
            if rec.frames > 0 {
                edges_with_frames += 1;
            }
        }
        assert!(
            edges_with_frames >= 2,
            "round-robin routing reaches multiple edges"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_protocol_runs_the_pipeline() {
        let mut scores = Vec::new();
        for kind in ProtocolKind::ALL {
            let m = quick().protocol(kind).build().run();
            assert!(m.transactions_committed > 0, "{kind}");
            assert!(m.f_score > 0.0, "{kind}");
            scores.push(m.f_score);
        }
        // Accuracy is a property of the models and thresholds, not the
        // consistency protocol: all three agree.
        assert!(scores.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    fn protocol_shows_up_in_the_label() {
        let m = quick().protocol(ProtocolKind::MsSr).build().run();
        assert!(m.label.contains("MS-SR"), "{}", m.label);
        let m = quick().build().run();
        assert!(!m.label.contains("MS-IA"), "default stays clean");
    }

    #[test]
    fn baselines_run_under_any_protocol() {
        for mode in [DeploymentMode::EdgeOnly, DeploymentMode::CloudOnly] {
            for kind in [ProtocolKind::MsIa, ProtocolKind::MsSr] {
                let m = quick().mode(mode).protocol(kind).build().run();
                assert!(m.transactions_committed > 0, "{mode:?}/{kind}");
            }
        }
    }

    #[test]
    fn multi_edge_deployment_partitions_the_work() {
        let one = quick().build().run();
        let four = quick().edges(4).build().run();
        // Same video, same thresholds: accuracy and bandwidth agree; the
        // transactions are simply spread over four stores.
        assert!((one.bandwidth_utilization - four.bandwidth_utilization).abs() < 1e-9);
        assert_eq!(one.transactions_committed, four.transactions_committed);
        assert!(four.label.contains("4 edges"), "{}", four.label);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_edges_panics() {
        let _ = Croesus::builder().edges(0);
    }

    #[test]
    #[should_panic(expected = "failover requires durability")]
    fn failover_without_durability_is_rejected() {
        // Pin Disabled explicitly: under CROESUS_WAL_PIPELINED=1 the
        // builder *default* is pipelined, which would satisfy failover.
        let _ = Croesus::builder()
            .durability(DurabilityMode::Disabled)
            .failover(true)
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_heartbeat_timeout_panics() {
        let _ = Croesus::builder().heartbeat_timeout(0);
    }

    #[test]
    fn per_frame_settling_keeps_apology_state_bounded() {
        // The leak regression: without settling, every finalized txn with
        // live retractable entries stayed registered forever (manager and
        // WAL shadow both). With per-frame settling, a clean run ends with
        // zero tracked entries — the log replays to an empty registry.
        let dir = croesus_wal::scratch_dir("system-settle");
        quick()
            .durability(DurabilityMode::group_commit(&dir))
            .build()
            .run();
        let rec = croesus_txn::recovery::recover_edge_file(dir.join("edge-0.wal")).unwrap();
        assert_eq!(
            rec.apologies.tracked_count(),
            0,
            "the final settle dropped every retractable entry"
        );
        assert!(rec.unfinalized.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
