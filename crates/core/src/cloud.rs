//! The cloud node.
//!
//! §3.3.3: "The cloud node has a single task of processing frames using the
//! cloud model Mc. When a frame f is received from an edge node, the labels
//! Lc are derived using Mc and then sent back to the edge node."
//!
//! Besides inference, the cloud is the failover site for edge durability:
//! a [`ReplicaTailer`] per edge tails that edge's shipped WAL bytes and
//! keeps a validated replica of its durable log, so that when the edge
//! dies the cloud can rebuild its committed state (apologies included)
//! and take over its partition.

use std::sync::Arc;

use croesus_detect::{Detection, DetectionModel, ModelKind, SimulatedModel};
use croesus_sim::SimDuration;
use croesus_txn::recovery::{recover_edge, RecoveredEdge};
use croesus_video::Frame;
use croesus_wal::{FrameReader, LogShipper, ShipCursor, ShipFetch, TailState, WalRecord};

/// The cloud node: a wrapper around the accurate (slow) model.
pub struct CloudNode {
    model: SimulatedModel,
}

impl CloudNode {
    /// Create a cloud node running the given model size.
    pub fn new(kind: ModelKind, seed: u64) -> Self {
        CloudNode {
            model: SimulatedModel::new(kind.profile(), seed),
        }
    }

    /// Create from an explicit model (tests, custom profiles).
    pub fn with_model(model: SimulatedModel) -> Self {
        CloudNode { model }
    }

    /// Process a frame: returns the cloud labels and the inference latency.
    pub fn process(&self, frame: &Frame) -> (Vec<Detection>, SimDuration) {
        let labels = self.model.detect(frame);
        let latency = self.model.inference_latency(frame);
        (labels, latency)
    }

    /// The model's name.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }
}

/// What one tailing round observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailPoll {
    /// New validated bytes were appended to the replica log.
    Advanced {
        /// Bytes accepted this round.
        bytes: usize,
        /// Whether the batch replaced the replica log (the source
        /// checkpointed or resumed into a new epoch).
        restarted: bool,
    },
    /// The cursor is at the shipped tip.
    UpToDate,
    /// The uplink is down; try again later.
    Offline,
    /// The fetched batch failed validation (damaged in flight) and was
    /// discarded without moving the cursor — the next poll refetches.
    Rejected,
}

/// The cloud's replica of one edge's durable log.
///
/// Tails a [`LogShipper`] with an LSN-style [`ShipCursor`] and validates
/// every batch before accepting it: the candidate log must frame-parse
/// with a clean tail *and* every payload must decode as a [`WalRecord`].
/// The source only publishes synced whole frames, so anything less is
/// in-flight damage; rejecting without advancing the cursor makes the
/// next poll an automatic refetch. The replica therefore holds, at all
/// times, a valid prefix of the edge's durable log — exactly what crash
/// recovery accepts.
pub struct ReplicaTailer {
    shipper: Arc<LogShipper>,
    cursor: ShipCursor,
    log: Vec<u8>,
}

impl ReplicaTailer {
    /// Start tailing from the beginning of the current epoch.
    #[must_use]
    pub fn new(shipper: Arc<LogShipper>) -> Self {
        ReplicaTailer {
            shipper,
            cursor: ShipCursor::default(),
            log: Vec::new(),
        }
    }

    /// Every frame CRC-clean to the very end, every payload a record.
    fn validates(bytes: &[u8]) -> bool {
        let mut reader = FrameReader::new(bytes);
        for payload in reader.by_ref() {
            if WalRecord::decode(payload).is_err() {
                return false;
            }
        }
        reader.tail() == TailState::Clean
    }

    /// One tailing round: fetch from the cursor, validate, append.
    pub fn poll(&mut self) -> TailPoll {
        match self.shipper.fetch(self.cursor) {
            ShipFetch::Offline => TailPoll::Offline,
            ShipFetch::UpToDate => TailPoll::UpToDate,
            ShipFetch::Batch(batch) => {
                let mut candidate = if batch.restart {
                    Vec::new()
                } else {
                    self.log.clone()
                };
                candidate.extend_from_slice(&batch.bytes);
                if !Self::validates(&candidate) {
                    return TailPoll::Rejected;
                }
                let bytes = batch.bytes.len();
                self.log = candidate;
                self.cursor = ShipCursor {
                    epoch: batch.epoch,
                    offset: self.log.len(),
                };
                TailPoll::Advanced {
                    bytes,
                    restarted: batch.restart,
                }
            }
        }
    }

    /// Poll until the replica is at the shipped tip (or the link drops).
    /// Returns the final poll outcome.
    pub fn catch_up(&mut self) -> TailPoll {
        loop {
            match self.poll() {
                TailPoll::Advanced { .. } => continue,
                done => return done,
            }
        }
    }

    /// The replicated log bytes — a valid prefix of the edge's durable
    /// log.
    #[must_use]
    pub fn log(&self) -> &[u8] {
        &self.log
    }

    /// The replication cursor.
    #[must_use]
    pub fn cursor(&self) -> ShipCursor {
        self.cursor
    }

    /// Apology-aware recovery over the replica — what takeover runs when
    /// the edge is declared dead. Byte-identical input to in-place
    /// recovery of the same durable prefix, so the rebuilt state is too.
    #[must_use]
    pub fn recover(&self) -> RecoveredEdge {
        recover_edge(&self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::VideoPreset;

    #[test]
    fn cloud_node_detects_with_model_latency() {
        let v = VideoPreset::StreetTraffic.generate(30, 3);
        let node = CloudNode::new(ModelKind::YoloV3_416, 3);
        let (labels, latency) = node.process(v.frame(5));
        assert!(!labels.is_empty() || v.frame(5).objects.is_empty());
        // YOLOv3-416 ≈ 1.12 s.
        assert!(latency.as_millis_f64() > 900.0 && latency.as_millis_f64() < 1400.0);
        assert_eq!(node.model_name(), "YOLOv3-416");
    }

    #[test]
    fn processing_is_deterministic() {
        let v = VideoPreset::StreetTraffic.generate(30, 3);
        let node = CloudNode::new(ModelKind::YoloV3_416, 3);
        let (a, la) = node.process(v.frame(7));
        let (b, lb) = node.process(v.frame(7));
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn model_sizes_have_ordered_latency() {
        let v = VideoPreset::StreetTraffic.generate(5, 3);
        let f = v.frame(0);
        let l320 = CloudNode::new(ModelKind::YoloV3_320, 3).process(f).1;
        let l608 = CloudNode::new(ModelKind::YoloV3_608, 3).process(f).1;
        assert!(l608 > l320);
    }

    mod tailer {
        use super::super::*;
        use croesus_store::{TxnId, Value};
        use croesus_wal::{StageFlags, StageRecord, Wal, WalConfig, WriteImage};

        fn shipped_wal() -> (Wal, Arc<LogShipper>) {
            let (wal, _) = Wal::in_memory(WalConfig::strict());
            let shipper = Arc::new(LogShipper::new());
            wal.attach_shipper(Arc::clone(&shipper));
            (wal, shipper)
        }

        fn commit(wal: &Wal, txn: u64, key: &str, val: i64) {
            wal.append_stage(StageRecord {
                txn: TxnId(txn),
                stage: 0,
                total: 2,
                flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::REGISTER),
                reads: vec![],
                writes: vec![key.into()],
                images: vec![WriteImage {
                    key: key.into(),
                    pre: None,
                    post: Some(Arc::new(Value::Int(val))),
                }],
            })
            .unwrap();
        }

        fn finalize(wal: &Wal, txn: u64) {
            wal.append_stage(StageRecord {
                txn: TxnId(txn),
                stage: 1,
                total: 2,
                flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::FINAL),
                reads: vec![],
                writes: vec![],
                images: vec![],
            })
            .unwrap();
        }

        #[test]
        fn replica_tracks_the_durable_log() {
            let (wal, shipper) = shipped_wal();
            let mut tailer = ReplicaTailer::new(shipper.clone());
            assert_eq!(tailer.poll(), TailPoll::UpToDate, "nothing shipped yet");
            commit(&wal, 1, "a", 1);
            finalize(&wal, 1);
            commit(&wal, 2, "b", 2);
            assert!(matches!(
                tailer.poll(),
                TailPoll::Advanced {
                    restarted: false,
                    ..
                }
            ));
            assert_eq!(tailer.log(), &shipper.image()[..]);
            let rec = tailer.recover();
            assert_eq!(rec.store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
            assert_eq!(rec.unfinalized, vec![TxnId(2)], "caught mid-flight");
            assert!(
                !rec.store.contains(&"b".into()),
                "the unvalidated guess is retracted on the replica too"
            );
        }

        #[test]
        fn damaged_batch_is_rejected_then_refetched() {
            let (wal, shipper) = shipped_wal();
            let mut tailer = ReplicaTailer::new(shipper.clone());
            commit(&wal, 1, "a", 1);
            shipper.corrupt_next_fetch();
            assert_eq!(tailer.poll(), TailPoll::Rejected);
            assert!(tailer.log().is_empty(), "nothing damaged was kept");
            assert!(matches!(tailer.poll(), TailPoll::Advanced { .. }));
            assert_eq!(tailer.log(), &shipper.image()[..]);
        }

        #[test]
        fn offline_link_stalls_the_tail_without_losing_the_cursor() {
            let (wal, shipper) = shipped_wal();
            let mut tailer = ReplicaTailer::new(shipper.clone());
            commit(&wal, 1, "a", 1);
            assert!(matches!(tailer.catch_up(), TailPoll::UpToDate));
            shipper.set_offline(true);
            commit(&wal, 2, "b", 2);
            assert_eq!(tailer.poll(), TailPoll::Offline);
            shipper.set_offline(false);
            assert!(matches!(
                tailer.poll(),
                TailPoll::Advanced {
                    restarted: false,
                    ..
                }
            ));
            assert_eq!(tailer.log(), &shipper.image()[..]);
        }

        #[test]
        fn checkpoint_restarts_the_replica_log() {
            let (wal, shipper) = shipped_wal();
            let mut tailer = ReplicaTailer::new(shipper.clone());
            commit(&wal, 1, "a", 1);
            finalize(&wal, 1);
            tailer.catch_up();
            wal.checkpoint().unwrap();
            commit(&wal, 2, "b", 2);
            assert!(matches!(
                tailer.poll(),
                TailPoll::Advanced {
                    restarted: true,
                    ..
                }
            ));
            tailer.catch_up();
            assert_eq!(tailer.log(), &shipper.image()[..]);
            let rec = tailer.recover();
            assert_eq!(rec.store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
            assert_eq!(rec.unfinalized, vec![TxnId(2)]);
        }
    }
}
