//! The cloud node.
//!
//! §3.3.3: "The cloud node has a single task of processing frames using the
//! cloud model Mc. When a frame f is received from an edge node, the labels
//! Lc are derived using Mc and then sent back to the edge node."

use croesus_detect::{Detection, DetectionModel, ModelKind, SimulatedModel};
use croesus_sim::SimDuration;
use croesus_video::Frame;

/// The cloud node: a wrapper around the accurate (slow) model.
pub struct CloudNode {
    model: SimulatedModel,
}

impl CloudNode {
    /// Create a cloud node running the given model size.
    pub fn new(kind: ModelKind, seed: u64) -> Self {
        CloudNode {
            model: SimulatedModel::new(kind.profile(), seed),
        }
    }

    /// Create from an explicit model (tests, custom profiles).
    pub fn with_model(model: SimulatedModel) -> Self {
        CloudNode { model }
    }

    /// Process a frame: returns the cloud labels and the inference latency.
    pub fn process(&self, frame: &Frame) -> (Vec<Detection>, SimDuration) {
        let labels = self.model.detect(frame);
        let latency = self.model.inference_latency(frame);
        (labels, latency)
    }

    /// The model's name.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::VideoPreset;

    #[test]
    fn cloud_node_detects_with_model_latency() {
        let v = VideoPreset::StreetTraffic.generate(30, 3);
        let node = CloudNode::new(ModelKind::YoloV3_416, 3);
        let (labels, latency) = node.process(v.frame(5));
        assert!(!labels.is_empty() || v.frame(5).objects.is_empty());
        // YOLOv3-416 ≈ 1.12 s.
        assert!(latency.as_millis_f64() > 900.0 && latency.as_millis_f64() < 1400.0);
        assert_eq!(node.model_name(), "YOLOv3-416");
    }

    #[test]
    fn processing_is_deterministic() {
        let v = VideoPreset::StreetTraffic.generate(30, 3);
        let node = CloudNode::new(ModelKind::YoloV3_416, 3);
        let (a, la) = node.process(v.frame(7));
        let (b, lb) = node.process(v.frame(7));
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn model_sizes_have_ordered_latency() {
        let v = VideoPreset::StreetTraffic.generate(5, 3);
        let f = v.frame(0);
        let l320 = CloudNode::new(ModelKind::YoloV3_320, 3).process(f).1;
        let l608 = CloudNode::new(ModelKind::YoloV3_608, 3).process(f).1;
        assert!(l608 > l320);
    }
}
