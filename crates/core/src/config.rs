//! Run configuration.

use croesus_detect::ModelKind;
use croesus_net::{PayloadCodec, Setup};
use croesus_video::VideoPreset;

use crate::threshold::ThresholdPair;

/// How the pipeline decides which frames to validate at the cloud.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValidationPolicy {
    /// Bandwidth thresholding with a `(θL, θU)` pair (§3.4) — the Croesus
    /// mechanism.
    Thresholds(ThresholdPair),
    /// Send a fixed fraction of frames, spread evenly — the "BU
    /// configuration" sweeps of Figure 2. Detections below the default
    /// low-confidence filter are still discarded.
    ForcedBu(f64),
}

impl ValidationPolicy {
    /// For [`ValidationPolicy::ForcedBu`], whether frame `index` is sent:
    /// a deterministic even spread hitting exactly `⌊n·bu⌋` of `n` frames.
    pub fn forced_send(bu: f64, index: u64) -> bool {
        let bu = bu.clamp(0.0, 1.0);
        ((index + 1) as f64 * bu).floor() > (index as f64 * bu).floor()
    }
}

/// Configuration of one Croesus run.
#[derive(Clone, Debug)]
pub struct CroesusConfig {
    /// The video to process.
    pub preset: VideoPreset,
    /// Number of frames to generate.
    pub num_frames: u64,
    /// Experiment seed: drives scene generation, detections, link jitter
    /// and workload key choice.
    pub seed: u64,
    /// The cloud model (Table 2 varies this; YOLOv3-416 is the default).
    pub cloud_model: ModelKind,
    /// Deployment setup (edge machine class and colocation).
    pub setup: Setup,
    /// Frame validation policy.
    pub validation: ValidationPolicy,
    /// Payload encoding for edge→cloud transfers.
    pub codec: PayloadCodec,
    /// Bounding-box overlap threshold for label matching (10% in §5.1).
    pub overlap_threshold: f64,
    /// Detections below this confidence are dropped by the edge input
    /// processor before triggering anything ("the input processing
    /// component removes any labels ... that have low confidence").
    /// Thresholding policies use θL instead.
    pub low_confidence_filter: f64,
    /// Probability that a validated frame's cloud labels never arrive
    /// (cloud outage / packet loss). The edge then finalizes locally after
    /// `cloud_timeout_ms`, keeping the multi-stage guarantee: initially
    /// committed transactions still finally commit.
    pub cloud_loss_rate: f64,
    /// How long the edge waits for cloud labels before giving up, ms.
    pub cloud_timeout_ms: f64,
}

impl CroesusConfig {
    /// A run with the paper's defaults: YOLOv3-416 cloud model, regular
    /// edge in California / cloud in Virginia, raw payloads, 10% overlap.
    pub fn new(preset: VideoPreset, thresholds: ThresholdPair) -> Self {
        CroesusConfig {
            preset,
            num_frames: 300,
            seed: 42,
            cloud_model: ModelKind::YoloV3_416,
            setup: Setup::default_paper(),
            validation: ValidationPolicy::Thresholds(thresholds),
            codec: PayloadCodec::raw(),
            overlap_threshold: 0.10,
            low_confidence_filter: 0.25,
            cloud_loss_rate: 0.0,
            cloud_timeout_ms: 3_000.0,
        }
    }

    /// Builder: number of frames.
    pub fn with_frames(mut self, n: u64) -> Self {
        self.num_frames = n;
        self
    }

    /// Builder: seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: cloud model.
    pub fn with_cloud_model(mut self, kind: ModelKind) -> Self {
        self.cloud_model = kind;
        self
    }

    /// Builder: deployment setup.
    pub fn with_setup(mut self, setup: Setup) -> Self {
        self.setup = setup;
        self
    }

    /// Builder: validation policy.
    pub fn with_validation(mut self, policy: ValidationPolicy) -> Self {
        self.validation = policy;
        self
    }

    /// Builder: payload codec.
    pub fn with_codec(mut self, codec: PayloadCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Builder: cloud loss rate (see [`CroesusConfig::cloud_loss_rate`]).
    pub fn with_cloud_loss(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0,1]");
        self.cloud_loss_rate = rate;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_bu_hits_exact_fraction() {
        for bu in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let n = 400u64;
            let sent = (0..n)
                .filter(|&i| ValidationPolicy::forced_send(bu, i))
                .count();
            assert_eq!(sent, (n as f64 * bu).floor() as usize, "bu={bu}");
        }
    }

    #[test]
    fn forced_bu_spreads_evenly() {
        let sent: Vec<u64> = (0..100)
            .filter(|&i| ValidationPolicy::forced_send(0.5, i))
            .collect();
        // Every other frame, not the first 50.
        assert!(sent.windows(2).all(|w| w[1] - w[0] == 2));
    }

    #[test]
    fn forced_bu_clamps() {
        assert!(ValidationPolicy::forced_send(1.5, 0));
        assert!(!ValidationPolicy::forced_send(-0.5, 0));
    }

    #[test]
    fn defaults_match_paper() {
        let c = CroesusConfig::new(
            croesus_video::VideoPreset::StreetTraffic,
            ThresholdPair::new(0.4, 0.6),
        );
        assert_eq!(c.cloud_model, ModelKind::YoloV3_416);
        assert_eq!(c.overlap_threshold, 0.10);
        assert_eq!(c.setup, Setup::default_paper());
    }

    #[test]
    fn builders_chain() {
        let c = CroesusConfig::new(
            croesus_video::VideoPreset::ParkDog,
            ThresholdPair::new(0.2, 0.3),
        )
        .with_frames(50)
        .with_seed(7)
        .with_cloud_model(ModelKind::YoloV3_608);
        assert_eq!(c.num_frames, 50);
        assert_eq!(c.seed, 7);
        assert_eq!(c.cloud_model, ModelKind::YoloV3_608);
    }
}
