//! The transactions bank (§3.3.2, "Initialization and Setup").
//!
//! "The transaction bank is a data structure that maintains the application
//! transactions and what triggers each transaction. ... it maintains a
//! table, where each row corresponds to a class of labels and the
//! transactions that would be triggered from that class of labels." A row
//! may also require an auxiliary-device input (the study-room reservation
//! is triggered by a click *and* a building label).

use std::sync::Arc;

use croesus_detect::Detection;
use croesus_sim::DetRng;
use croesus_txn::{RwSet, SectionCtx, SectionOutput, TxnError};
use croesus_video::LabelClass;

use crate::matching::FinalInput;

/// An initial-section body.
pub type InitialBody = Box<dyn FnOnce(&mut SectionCtx) -> Result<SectionOutput, TxnError> + Send>;

/// A final-section body, fed the [`FinalInput`] produced by label matching.
pub type FinalSectionBody =
    Box<dyn FnOnce(&mut SectionCtx, &FinalInput) -> Result<SectionOutput, TxnError> + Send>;

/// A concrete transaction ready to run: declared read/write sets plus the
/// two section bodies. The final section receives the [`FinalInput`]
/// produced by label matching.
pub struct TxnInstance {
    /// Template name, for reports.
    pub name: String,
    /// Initial section's declared read/write set.
    pub initial_rw: RwSet,
    /// Final section's (potential) read/write set.
    pub final_rw: RwSet,
    /// The initial section body.
    pub initial: InitialBody,
    /// The final section body.
    pub final_section: FinalSectionBody,
}

/// A transaction template: stamps out [`TxnInstance`]s for triggers.
pub trait TxnTemplate: Send + Sync {
    /// Template name.
    fn name(&self) -> &str;

    /// Create an instance for a triggering detection.
    fn instantiate(&self, trigger: &Detection, rng: &mut DetRng) -> TxnInstance;
}

/// One row of the bank: a class group, the label classes belonging to it,
/// an optional auxiliary-input requirement, and the template to trigger.
pub struct TriggerRule {
    /// Row name, e.g. "Buildings".
    pub class_group: String,
    /// Label classes in this group. Empty means "any label" (for rules
    /// triggered purely by auxiliary input).
    pub classes: Vec<LabelClass>,
    /// Auxiliary input kind required in addition to (or instead of) a
    /// label, e.g. `"click"`.
    pub requires_aux: Option<String>,
    /// The transaction template this rule triggers.
    pub template: Arc<dyn TxnTemplate>,
}

impl TriggerRule {
    /// Whether `class` belongs to this rule's group.
    pub fn matches_class(&self, class: &LabelClass) -> bool {
        self.classes.is_empty() || self.classes.contains(class)
    }
}

/// The transactions bank.
#[derive(Default)]
pub struct TransactionsBank {
    rules: Vec<TriggerRule>,
}

impl TransactionsBank {
    /// An empty bank.
    pub fn new() -> Self {
        TransactionsBank::default()
    }

    /// Register a rule; builder style.
    pub fn with_rule(mut self, rule: TriggerRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Register a rule.
    pub fn register(&mut self, rule: TriggerRule) {
        self.rules.push(rule);
    }

    /// All rules.
    pub fn rules(&self) -> &[TriggerRule] {
        &self.rules
    }

    /// Rules triggered by a detected label alone (no auxiliary input).
    pub fn triggered_by_label(&self, detection: &Detection) -> Vec<&TriggerRule> {
        self.rules
            .iter()
            .filter(|r| r.requires_aux.is_none() && r.matches_class(&detection.class))
            .collect()
    }

    /// Rules triggered by an auxiliary input of `kind`, paired with the
    /// matching label among the most recent detections (the input
    /// processing component "matches a received auxiliary input with the
    /// labels from the most recently detected labels"). Rules with an
    /// empty class list trigger without a label.
    pub fn triggered_by_aux<'a>(
        &'a self,
        kind: &str,
        recent: &'a [Detection],
    ) -> Vec<(&'a TriggerRule, Option<&'a Detection>)> {
        self.rules
            .iter()
            .filter(|r| r.requires_aux.as_deref() == Some(kind))
            .filter_map(|r| {
                if r.classes.is_empty() {
                    Some((r, None))
                } else {
                    // Pick the matching label closest to the frame centre
                    // (the paper's Task-2 tie-break).
                    recent
                        .iter()
                        .filter(|d| r.matches_class(&d.class))
                        .min_by(|a, b| {
                            a.bbox
                                .distance_to_frame_center()
                                .partial_cmp(&b.bbox.distance_to_frame_center())
                                .expect("distances are never NaN")
                        })
                        .map(|d| (r, Some(d)))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::BoundingBox;

    struct Noop;
    impl TxnTemplate for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn instantiate(&self, _trigger: &Detection, _rng: &mut DetRng) -> TxnInstance {
            TxnInstance {
                name: "noop".into(),
                initial_rw: RwSet::new(),
                final_rw: RwSet::new(),
                initial: Box::new(|_| Ok(SectionOutput::new())),
                final_section: Box::new(|_, _| Ok(SectionOutput::new())),
            }
        }
    }

    fn det(class: &str, x: f64) -> Detection {
        Detection::new(class.into(), 0.9, BoundingBox::new(x, 0.4, 0.2, 0.2))
    }

    fn bank() -> TransactionsBank {
        TransactionsBank::new()
            .with_rule(TriggerRule {
                class_group: "Buildings".into(),
                classes: vec!["building".into()],
                requires_aux: None,
                template: Arc::new(Noop),
            })
            .with_rule(TriggerRule {
                class_group: "Reservation".into(),
                classes: vec!["building".into()],
                requires_aux: Some("click".into()),
                template: Arc::new(Noop),
            })
            .with_rule(TriggerRule {
                class_group: "Menu".into(),
                classes: vec![],
                requires_aux: Some("menu".into()),
                template: Arc::new(Noop),
            })
    }

    #[test]
    fn label_triggers_matching_rule_only() {
        let b = bank();
        let hits = b.triggered_by_label(&det("building", 0.4));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].class_group, "Buildings");
        assert!(b.triggered_by_label(&det("shuttle", 0.4)).is_empty());
    }

    #[test]
    fn aux_rule_needs_matching_recent_label() {
        let b = bank();
        let recent = vec![det("building", 0.1)];
        let hits = b.triggered_by_aux("click", &recent);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.is_some());
        // No recent building → reservation does not fire.
        let recent = [det("dog", 0.1)];
        assert!(b.triggered_by_aux("click", &recent).is_empty());
    }

    #[test]
    fn aux_picks_label_closest_to_center() {
        let b = bank();
        let recent = vec![det("building", 0.0), det("building", 0.4)];
        let hits = b.triggered_by_aux("click", &recent);
        let picked = hits[0].1.unwrap();
        assert_eq!(picked.bbox.x, 0.4, "the centred label wins");
    }

    #[test]
    fn classless_aux_rule_fires_without_labels() {
        let b = bank();
        let hits = b.triggered_by_aux("menu", &[]);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.is_none());
    }

    #[test]
    fn unknown_aux_kind_matches_nothing() {
        let b = bank();
        assert!(b
            .triggered_by_aux("shake", &[det("building", 0.1)])
            .is_empty());
    }

    #[test]
    fn instantiated_template_runs() {
        let b = bank();
        let mut rng = DetRng::new(1);
        let inst = b.rules()[0]
            .template
            .instantiate(&det("building", 0.4), &mut rng);
        assert_eq!(inst.name, "noop");
    }
}
