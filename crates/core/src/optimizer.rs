//! Threshold evaluation and the dynamic optimization of §3.4.
//!
//! The optimization formulation: given frames `V`, a query object `O` and a
//! minimum F-score `µ`, find `(θL, θU)` minimizing the sent-frame ratio
//! `δ(θL, θU)` subject to `f(θL, θU) ≥ µ`.
//!
//! [`ThresholdEvaluator`] precomputes both models' detections once (they
//! are deterministic per frame), making each threshold-pair evaluation a
//! cheap filter-and-match pass — the same trick lets the brute-force and
//! gradient optimizers (§5.2.3, Figure 5) search identical surfaces.

use croesus_detect::{score_against, Detection, DetectionModel, SimulatedModel};
use croesus_sim::stats::PrecisionRecall;
use croesus_video::{LabelClass, Video};

use crate::threshold::ThresholdPair;

/// The outcome of one threshold pair over a video.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdOutcome {
    /// δ: fraction of frames sent to the cloud (bandwidth utilization).
    pub bu: f64,
    /// F-score of the client-observed labels vs the cloud reference.
    pub f_score: f64,
    /// Precision component.
    pub precision: f64,
    /// Recall component.
    pub recall: f64,
}

/// An optimizer result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimalThresholds {
    /// The chosen pair.
    pub pair: ThresholdPair,
    /// Its outcome.
    pub outcome: ThresholdOutcome,
    /// Whether the accuracy constraint `f ≥ µ` was satisfiable at all.
    pub feasible: bool,
    /// How many pair evaluations the search used (the brute-force vs
    /// gradient comparison of §5.2.3 is in these terms).
    pub evaluations: u64,
}

struct FrameData {
    edge_query: Vec<Detection>,
    cloud_query: Vec<Detection>,
}

/// Precomputed detections for fast threshold-pair evaluation.
pub struct ThresholdEvaluator {
    frames: Vec<FrameData>,
    query: LabelClass,
    overlap: f64,
}

impl ThresholdEvaluator {
    /// Run both models over the video once and keep the query-class
    /// detections.
    pub fn build(
        video: &Video,
        edge_model: &SimulatedModel,
        cloud_model: &SimulatedModel,
        overlap: f64,
    ) -> Self {
        let query = video.query_class().clone();
        let frames = video
            .frames()
            .iter()
            .map(|f| {
                let keep = |d: &Detection| d.is_class(&query);
                FrameData {
                    edge_query: edge_model.detect(f).into_iter().filter(keep).collect(),
                    cloud_query: cloud_model.detect(f).into_iter().filter(keep).collect(),
                }
            })
            .collect();
        ThresholdEvaluator {
            frames,
            query,
            overlap,
        }
    }

    /// The query class.
    pub fn query(&self) -> &LabelClass {
        &self.query
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the evaluator has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Evaluate one `(θL, θU)` pair: δ and the F-score of what the client
    /// would observe (cloud labels for validated frames, keep-interval edge
    /// labels otherwise).
    pub fn evaluate(&self, pair: ThresholdPair) -> ThresholdOutcome {
        let mut sent = 0usize;
        let mut pr = PrecisionRecall::default();
        for fd in &self.frames {
            let send = fd
                .edge_query
                .iter()
                .any(|d| pair.lower <= d.confidence && d.confidence <= pair.upper);
            let final_labels: Vec<Detection> = if send {
                sent += 1;
                fd.cloud_query.clone()
            } else {
                fd.edge_query
                    .iter()
                    .filter(|d| d.confidence > pair.upper)
                    .cloned()
                    .collect()
            };
            pr.add(score_against(
                &final_labels,
                &fd.cloud_query,
                &self.query,
                self.overlap,
            ));
        }
        ThresholdOutcome {
            bu: sent as f64 / self.frames.len().max(1) as f64,
            f_score: pr.f_score(),
            precision: pr.precision(),
            recall: pr.recall(),
        }
    }

    /// The default grid used by both searches and the Figure-5 heatmaps:
    /// thresholds 0.0, 0.1, …, 0.9 with `θL ≤ θU`.
    pub fn grid(step: f64) -> Vec<ThresholdPair> {
        assert!(step > 0.0 && step < 1.0, "grid step must be in (0,1)");
        let n = (1.0 / step).round() as usize;
        let mut pairs = Vec::new();
        for li in 0..n {
            for ui in li..n {
                pairs.push(ThresholdPair::new(li as f64 * step, ui as f64 * step));
            }
        }
        pairs
    }

    /// Brute force (§5.2.3: "evaluates the whole space of threshold
    /// pairs"): minimize δ subject to `f ≥ µ`; among ties prefer the higher
    /// F-score ("prioritizing thresholds that yield higher accuracy"). If
    /// no pair meets µ, return the best-accuracy pair and mark the result
    /// infeasible.
    pub fn brute_force(&self, mu: f64, step: f64) -> OptimalThresholds {
        let mut evaluations = 0u64;
        let mut best_feasible: Option<(ThresholdPair, ThresholdOutcome)> = None;
        let mut best_any: Option<(ThresholdPair, ThresholdOutcome)> = None;
        for pair in Self::grid(step) {
            let out = self.evaluate(pair);
            evaluations += 1;
            if best_any.is_none() || out.f_score > best_any.expect("set above").1.f_score {
                best_any = Some((pair, out));
            }
            if out.f_score >= mu {
                let better = match &best_feasible {
                    None => true,
                    Some((_, b)) => {
                        out.bu < b.bu - 1e-12
                            || ((out.bu - b.bu).abs() <= 1e-12 && out.f_score > b.f_score)
                    }
                };
                if better {
                    best_feasible = Some((pair, out));
                }
            }
        }
        match best_feasible {
            Some((pair, outcome)) => OptimalThresholds {
                pair,
                outcome,
                feasible: true,
                evaluations,
            },
            None => {
                let (pair, outcome) = best_any.expect("grid is non-empty");
                OptimalThresholds {
                    pair,
                    outcome,
                    feasible: false,
                    evaluations,
                }
            }
        }
    }

    /// Penalty used by the gradient search: feasible pairs score by δ;
    /// infeasible pairs are dominated by any feasible one and ordered by
    /// their constraint violation.
    fn penalty(out: &ThresholdOutcome, mu: f64) -> f64 {
        if out.f_score >= mu {
            out.bu
        } else {
            1.0 + (mu - out.f_score)
        }
    }

    /// Gradient-step search (§5.2.3's faster alternative): steepest-descent
    /// over the grid neighborhood from a centre start, evaluating only the
    /// visited pairs. Converges to a local optimum of the penalized
    /// objective with far fewer evaluations than the full grid.
    pub fn gradient(&self, mu: f64, step: f64) -> OptimalThresholds {
        let clampq = |x: f64| {
            // Snap to the grid and clamp to [0, 1-step].
            let max = 1.0 - step;
            ((x / step).round() * step).clamp(0.0, max)
        };
        let mut current = ThresholdPair::new(clampq(0.4), clampq(0.6));
        let mut current_out = self.evaluate(current);
        let mut evaluations = 1u64;
        loop {
            let mut best_neighbor: Option<(ThresholdPair, ThresholdOutcome)> = None;
            for (dl, du) in [
                (-step, 0.0),
                (step, 0.0),
                (0.0, -step),
                (0.0, step),
                (-step, step),
                (step, -step),
                (step, step),
                (-step, -step),
            ] {
                let l = clampq(current.lower + dl);
                let u = clampq(current.upper + du);
                if l > u || (l == current.lower && u == current.upper) {
                    continue;
                }
                let pair = ThresholdPair::new(l, u);
                let out = self.evaluate(pair);
                evaluations += 1;
                let better = match &best_neighbor {
                    None => Self::penalty(&out, mu) < Self::penalty(&current_out, mu),
                    Some((_, b)) => Self::penalty(&out, mu) < Self::penalty(b, mu),
                };
                if better {
                    best_neighbor = Some((pair, out));
                }
            }
            match best_neighbor {
                Some((pair, out)) => {
                    current = pair;
                    current_out = out;
                }
                None => break,
            }
        }
        OptimalThresholds {
            pair: current,
            outcome: current_out,
            feasible: current_out.f_score >= mu,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_detect::ModelProfile;
    use croesus_video::VideoPreset;

    fn evaluator(preset: VideoPreset) -> ThresholdEvaluator {
        let video = preset.generate(150, 42);
        let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 42);
        let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), 43);
        ThresholdEvaluator::build(&video, &edge, &cloud, 0.10)
    }

    #[test]
    fn full_validation_gives_perfect_f_score() {
        let ev = evaluator(VideoPreset::StreetTraffic);
        let out = ev.evaluate(ThresholdPair::new(0.0, 0.9));
        // Nearly every frame with a detection is sent; sent frames score 1.
        assert!(out.bu > 0.8, "bu {}", out.bu);
        assert!(out.f_score > 0.97, "f {}", out.f_score);
    }

    #[test]
    fn degenerate_pair_sends_nothing() {
        let ev = evaluator(VideoPreset::StreetTraffic);
        let out = ev.evaluate(ThresholdPair::new(0.5, 0.5));
        assert!(out.bu < 0.05, "bu {}", out.bu);
        assert!(
            out.f_score < 0.85,
            "edge-only accuracy is limited: {}",
            out.f_score
        );
    }

    #[test]
    fn wider_validate_interval_means_more_bu_and_accuracy() {
        let ev = evaluator(VideoPreset::StreetTraffic);
        let narrow = ev.evaluate(ThresholdPair::new(0.45, 0.55));
        let wide = ev.evaluate(ThresholdPair::new(0.2, 0.8));
        assert!(wide.bu > narrow.bu);
        assert!(wide.f_score >= narrow.f_score);
    }

    #[test]
    fn airport_needs_no_cloud_for_high_accuracy() {
        let ev = evaluator(VideoPreset::AirportRunway);
        let out = ev.evaluate(ThresholdPair::new(0.3, 0.4));
        assert!(
            out.bu < 0.3,
            "easy video needs little validation: {}",
            out.bu
        );
        assert!(
            out.f_score > 0.8,
            "airport edge accuracy is high: {}",
            out.f_score
        );
    }

    #[test]
    fn grid_has_expected_size() {
        // step 0.1 → 10 values, θL ≤ θU → 55 pairs.
        assert_eq!(ThresholdEvaluator::grid(0.1).len(), 55);
        for p in ThresholdEvaluator::grid(0.1) {
            assert!(p.lower <= p.upper);
        }
    }

    #[test]
    fn brute_force_meets_accuracy_floor() {
        let ev = evaluator(VideoPreset::StreetTraffic);
        let opt = ev.brute_force(0.9, 0.1);
        assert!(opt.feasible);
        assert!(opt.outcome.f_score >= 0.9);
        assert_eq!(opt.evaluations, 55);
        // Optimal BU should not be total.
        assert!(opt.outcome.bu < 1.0);
    }

    #[test]
    fn brute_force_minimizes_bu_among_feasible() {
        let ev = evaluator(VideoPreset::StreetTraffic);
        let opt = ev.brute_force(0.85, 0.1);
        // No grid pair with an F ≥ µ may have lower BU.
        for pair in ThresholdEvaluator::grid(0.1) {
            let out = ev.evaluate(pair);
            if out.f_score >= 0.85 {
                assert!(out.bu >= opt.outcome.bu - 1e-12);
            }
        }
    }

    #[test]
    fn impossible_floor_reports_infeasible_with_best_accuracy() {
        let ev = evaluator(VideoPreset::MallSurveillance);
        let opt = ev.brute_force(1.01, 0.1);
        assert!(!opt.feasible);
        assert!(opt.outcome.f_score > 0.0);
    }

    #[test]
    fn gradient_uses_fewer_evaluations_than_brute_force() {
        let ev = evaluator(VideoPreset::StreetTraffic);
        let brute = ev.brute_force(0.9, 0.1);
        let grad = ev.gradient(0.9, 0.1);
        assert!(
            grad.evaluations < brute.evaluations,
            "gradient {} vs brute {}",
            grad.evaluations,
            brute.evaluations
        );
        // The paper reports the gradient method reaching a comparable
        // operating point ~2.2× faster.
        assert!(
            grad.outcome.f_score >= 0.85,
            "gradient f {}",
            grad.outcome.f_score
        );
    }

    #[test]
    fn gradient_result_is_feasible_when_floor_is_reachable() {
        let ev = evaluator(VideoPreset::ParkDog);
        let grad = ev.gradient(0.8, 0.1);
        assert!(grad.feasible, "outcome {:?}", grad.outcome);
    }

    #[test]
    fn easy_video_has_lower_optimal_bu_than_hard_video() {
        let easy = evaluator(VideoPreset::AirportRunway).brute_force(0.8, 0.1);
        let hard = evaluator(VideoPreset::MallSurveillance).brute_force(0.8, 0.1);
        assert!(
            easy.outcome.bu < hard.outcome.bu,
            "airport {} vs mall {}",
            easy.outcome.bu,
            hard.outcome.bu
        );
    }
}
