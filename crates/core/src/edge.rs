//! The edge node (§3.3.2).
//!
//! The edge node runs the small model over incoming frames, consults the
//! transactions bank for the transactions each label triggers, processes
//! their initial sections immediately (initial commit → response to the
//! client), and keeps the pending final sections until the cloud labels
//! arrive (or the frame is locally finalized when thresholding decides not
//! to validate it).
//!
//! Transaction processing goes through `dyn`
//! [`MultiStageProtocol`] — the edge node does not care whether the
//! deployment runs MS-IA (the paper's default), MS-SR, or the staged
//! discipline; swap the protocol at construction and every workload runs
//! unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use croesus_detect::{Detection, DetectionModel, SimulatedModel};
use croesus_sim::{DetRng, SimDuration};
use croesus_store::{KvStore, LockManager, TxnId};
use croesus_txn::{
    ExecutorCore, MultiStageProtocol, ProtocolKind, RwSet, SectionOutput, Sequencer, StageOutcome,
    TxnHandle, WorkerPool,
};
use croesus_video::Frame;

use crate::bank::TransactionsBank;
use crate::matching::{match_edge_to_cloud, FinalInput};

type FinalBody = crate::bank::FinalSectionBody;

struct PendingTxn {
    handle: TxnHandle,
    final_rw: RwSet,
    final_body: FinalBody,
    edge_label: Detection,
}

/// Result of processing a frame's initial stage.
pub struct InitialStage {
    /// Transactions whose initial sections committed.
    pub committed: u64,
    /// Wall-clock time spent executing initial sections.
    pub txn_latency: SimDuration,
    /// Responses produced for the client.
    pub responses: Vec<SectionOutput>,
}

/// Result of a frame's final stage.
pub struct FinalStage {
    /// Final sections committed (including fresh missed-label transactions).
    pub committed: u64,
    /// Wall-clock time spent executing final sections.
    pub txn_latency: SimDuration,
    /// Verdict counts: (correct, corrected, erroneous, missed).
    pub counts: (u64, u64, u64, u64),
}

/// The edge node.
pub struct EdgeNode {
    model: SimulatedModel,
    protocol: Arc<dyn MultiStageProtocol>,
    bank: Arc<TransactionsBank>,
    overlap_threshold: f64,
    txn_counter: AtomicU64,
    rng: Mutex<DetRng>,
    pending: Mutex<HashMap<u64, Vec<PendingTxn>>>,
    /// Wave-parallel runtime: initial sections of one sequencer wave run
    /// across this pool's workers. The default inline pool (1 worker) is
    /// the historic single-threaded pipeline, byte-identical.
    pool: WorkerPool,
}

impl EdgeNode {
    /// Create an edge node: small model, fresh store, MS-IA transaction
    /// processing (the paper's default consistency level, §5.1).
    pub fn new(
        model: SimulatedModel,
        bank: Arc<TransactionsBank>,
        overlap_threshold: f64,
        seed: u64,
    ) -> Self {
        let kind = ProtocolKind::MsIa;
        let core = ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(kind.default_lock_policy())),
        );
        Self::with_protocol(model, bank, overlap_threshold, seed, kind.build(core))
    }

    /// Create an edge node driving transactions through an arbitrary
    /// multi-stage protocol.
    pub fn with_protocol(
        model: SimulatedModel,
        bank: Arc<TransactionsBank>,
        overlap_threshold: f64,
        seed: u64,
        protocol: Box<dyn MultiStageProtocol>,
    ) -> Self {
        EdgeNode {
            model,
            protocol: Arc::from(protocol),
            bank,
            overlap_threshold,
            txn_counter: AtomicU64::new(0),
            rng: Mutex::new(DetRng::new(seed).fork_named("edge-node")),
            pending: Mutex::new(HashMap::new()),
            pool: WorkerPool::inline_pool(),
        }
    }

    /// Replace the execution pool: initial sections of each sequencer wave
    /// run across the pool's workers. With `WorkerPool::new(1)` (the
    /// default) execution is inline and byte-identical with the historic
    /// single-threaded pipeline.
    #[must_use]
    pub fn with_worker_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Worker threads executing this edge's waves (1 = inline).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The edge datastore.
    pub fn store(&self) -> &Arc<KvStore> {
        self.protocol.store()
    }

    /// The transaction protocol (stats, apologies, history).
    pub fn protocol(&self) -> &dyn MultiStageProtocol {
        &*self.protocol
    }

    fn next_txn(&self) -> TxnId {
        TxnId(self.txn_counter.fetch_add(1, Ordering::Relaxed))
    }

    /// Run the small model over a frame.
    pub fn detect(&self, frame: &Frame) -> (Vec<Detection>, SimDuration) {
        (
            self.model.detect(frame),
            self.model.inference_latency(frame),
        )
    }

    /// Run one instantiated transaction's initial section: begin, execute,
    /// commit. `None` when the protocol aborted it (MS-SR wait-die against
    /// a pending holder's locks — deterministic, it depends only on txn
    /// ids). A free function over the `Arc`'d protocol so pool jobs can
    /// own everything they touch.
    fn run_initial_txn(
        protocol: &dyn MultiStageProtocol,
        txn: TxnId,
        label: Detection,
        inst: crate::bank::TxnInstance,
    ) -> Option<(SectionOutput, PendingTxn)> {
        let handle = protocol.begin(txn, &[inst.initial_rw.clone(), inst.final_rw.clone()]);
        let mut body = Some(inst.initial);
        match protocol.run_stage(handle, &inst.initial_rw, &mut |ctx| {
            (body.take().expect("initial body runs once"))(ctx.section_mut())
        }) {
            Ok(StageOutcome::Committed { output, next }) => Some((
                output,
                PendingTxn {
                    handle: next,
                    final_rw: inst.final_rw,
                    final_body: inst.final_section,
                    edge_label: label,
                },
            )),
            Ok(StageOutcome::Complete { .. }) => {
                unreachable!("two stages were declared")
            }
            Err(_) => {
                // Sequenced MS-IA execution cannot conflict; under MS-SR a
                // pending transaction's held locks can abort this one —
                // drop it (the protocol recorded the abort).
                None
            }
        }
    }

    /// Trigger and run the initial sections for the surviving labels of a
    /// frame. Transactions are ordered by the sequencer so conflicting
    /// initial sections never overlap (§5.2.4); within a wave the runner
    /// parallelizes across the edge's worker pool. Under MS-SR a
    /// conflicting transaction can still abort on the locks a *pending*
    /// transaction holds across its cloud wait; it is then dropped, which
    /// is the hot-spot behaviour of Fig. 6(b).
    ///
    /// Determinism: waves are computed over each transaction's **merged**
    /// declared footprint (initial ∪ final), not just its initial rw-set —
    /// MS-SR acquires the later stages' locks at begin, so two wave-mates
    /// overlapping only on final keys would contend inside a wave. With
    /// merged footprints, wave-mates are fully lock-disjoint; the only
    /// conflicts left are against *pending* transactions from earlier
    /// frames, which always hold lower txn ids, so wait-die resolves them
    /// identically no matter which worker runs what. Txn ids are assigned
    /// in wave-major submission order, and results are collected in that
    /// same order — `workers(1)` and `workers(n)` produce the same
    /// responses, the same pendings, the same stats.
    pub fn run_initial_stage(&self, frame_index: u64, labels: &[Detection]) -> InitialStage {
        let started = Instant::now();
        // Frame ingest advances the stream's sim frame clock: every event
        // this frame produces (stages, syncs, verdicts) is stamped with it.
        let obs = self.protocol.core().obs();
        obs.set_frame(frame_index);
        obs.emit(croesus_obs::EventKind::FrameIngest);
        // Instantiate all triggered transactions.
        let mut instances = Vec::new();
        {
            let rng = self.rng.lock();
            for (li, label) in labels.iter().enumerate() {
                let mut lrng = rng.fork(frame_index << 20 | li as u64);
                for rule in self.bank.triggered_by_label(label) {
                    instances.push((label.clone(), rule.template.instantiate(label, &mut lrng)));
                }
            }
        }
        // Sequence by merged footprint and execute wave by wave.
        let rwsets: Vec<RwSet> = instances
            .iter()
            .map(|(_, i)| i.initial_rw.union(&i.final_rw))
            .collect();
        let mut slots: Vec<Option<(Detection, crate::bank::TxnInstance)>> =
            instances.into_iter().map(Some).collect();
        let mut committed = 0u64;
        let mut responses = Vec::new();
        let mut pendings = Vec::new();
        for wave in Sequencer::waves(&rwsets) {
            if self.pool.is_inline() || wave.len() == 1 {
                for idx in wave {
                    let (label, inst) = slots[idx].take().expect("each index runs once");
                    let txn = self.next_txn();
                    if let Some((output, ptxn)) =
                        Self::run_initial_txn(&*self.protocol, txn, label, inst)
                    {
                        committed += 1;
                        responses.push(output);
                        pendings.push(ptxn);
                    }
                }
            } else {
                let jobs: Vec<_> = wave
                    .iter()
                    .map(|&idx| {
                        let (label, inst) = slots[idx].take().expect("each index runs once");
                        // Ids are handed out at submission time, in wave
                        // order — the same sequence the inline path sees.
                        let txn = self.next_txn();
                        let protocol = Arc::clone(&self.protocol);
                        move || Self::run_initial_txn(&*protocol, txn, label, inst)
                    })
                    .collect();
                for (output, ptxn) in self.pool.run_wave(jobs).into_iter().flatten() {
                    committed += 1;
                    responses.push(output);
                    pendings.push(ptxn);
                }
            }
        }
        // Merge rather than overwrite: dropping earlier pending handles
        // would leak the locks MS-SR transactions hold across their wait.
        self.pending
            .lock()
            .entry(frame_index)
            .or_default()
            .extend(pendings);
        InitialStage {
            committed,
            txn_latency: SimDuration::from_secs_f64(started.elapsed().as_secs_f64()),
            responses,
        }
    }

    /// Run one pending transaction's final stage with its matched input.
    fn finalize_one(&self, ptxn: PendingTxn, input: &FinalInput) {
        let mut body = Some(ptxn.final_body);
        self.protocol
            .run_stage(ptxn.handle, &ptxn.final_rw, &mut |ctx| {
                (body.take().expect("final body runs once"))(ctx.section_mut(), input)
            })
            .expect("final sections cannot abort");
    }

    /// Deliver the cloud labels for a validated frame: match them against
    /// the pending edge labels, run every pending final section with its
    /// verdict, and spawn fresh transactions for cloud labels the edge
    /// missed.
    pub fn deliver_cloud_labels(&self, frame_index: u64, cloud_labels: &[Detection]) -> FinalStage {
        let started = Instant::now();
        let pendings = self.pending.lock().remove(&frame_index).unwrap_or_default();
        let edge_labels: Vec<Detection> = pendings.iter().map(|p| p.edge_label.clone()).collect();
        let frame_match = match_edge_to_cloud(&edge_labels, cloud_labels, self.overlap_threshold);
        let (correct, corrected, erroneous) = {
            let c = frame_match.counts();
            (c.0 as u64, c.1 as u64, c.2 as u64)
        };

        let mut committed = 0u64;
        for (ptxn, input) in pendings.into_iter().zip(frame_match.inputs) {
            self.finalize_one(ptxn, &input);
            committed += 1;
        }

        // Cloud labels with no edge counterpart trigger fresh initial+final
        // pairs (§3.3.2, last paragraph).
        let missed = frame_match.missed.len() as u64;
        for (mi, label) in frame_match.missed.into_iter().enumerate() {
            let inst = {
                let rng = self.rng.lock();
                let mut lrng = rng.fork(frame_index << 20 | (1 << 19) | mi as u64);
                self.bank
                    .triggered_by_label(&label)
                    .first()
                    .map(|rule| rule.template.instantiate(&label, &mut lrng))
            };
            if let Some(inst) = inst {
                let txn = self.next_txn();
                let handle = self
                    .protocol
                    .begin(txn, &[inst.initial_rw.clone(), inst.final_rw.clone()]);
                let mut body = Some(inst.initial);
                if let Ok(outcome) = self
                    .protocol
                    .run_stage(handle, &inst.initial_rw, &mut |ctx| {
                        (body.take().expect("initial body runs once"))(ctx.section_mut())
                    })
                {
                    let input = FinalInput::correct(label.clone());
                    self.finalize_one(
                        PendingTxn {
                            handle: outcome.into_next().expect("two stages were declared"),
                            final_rw: inst.final_rw,
                            final_body: inst.final_section,
                            edge_label: label,
                        },
                        &input,
                    );
                    committed += 1;
                }
            }
        }

        self.protocol
            .core()
            .obs()
            .emit(croesus_obs::EventKind::CloudVerdict {
                correct: correct as u32,
                corrected: corrected as u32,
                erroneous: erroneous as u32,
                missed: missed as u32,
            });

        FinalStage {
            committed,
            txn_latency: SimDuration::from_secs_f64(started.elapsed().as_secs_f64()),
            counts: (correct, corrected, erroneous, missed),
        }
    }

    /// Finalize a frame locally (thresholding decided not to validate):
    /// every pending final section runs with its edge label assumed
    /// correct.
    pub fn finalize_local(&self, frame_index: u64) -> FinalStage {
        let started = Instant::now();
        let pendings = self.pending.lock().remove(&frame_index).unwrap_or_default();
        let mut committed = 0u64;
        let n = pendings.len() as u64;
        for ptxn in pendings {
            let input = FinalInput::assumed_correct(ptxn.edge_label.clone());
            self.finalize_one(ptxn, &input);
            committed += 1;
        }
        FinalStage {
            committed,
            txn_latency: SimDuration::from_secs_f64(started.elapsed().as_secs_f64()),
            counts: (n, 0, 0, 0),
        }
    }

    /// Number of frames with pending final sections.
    pub fn pending_frames(&self) -> usize {
        self.pending.lock().len()
    }

    /// Settle-and-prune: when the edge is quiescent (no frame awaiting a
    /// final section), every registered transaction is finalized and can
    /// never become a retraction root; future cascades can only involve
    /// future transactions. Dropping the retractable entries here is what
    /// keeps the apology manager and the WAL shadow state bounded over an
    /// unbounded run. Returns the entries dropped (0 when not quiescent —
    /// a pending transaction could still retract, so nothing is safe to
    /// forget).
    pub fn settle(&self) -> usize {
        let pending = self.pending.lock();
        if !pending.is_empty() {
            return 0;
        }
        let dropped = self.protocol.core().apologies().settle_all();
        if dropped > 0 {
            if let Some(wal) = self.protocol.core().wal() {
                wal.append_settle()
                    .expect("WAL append failed — durability cannot be guaranteed");
            }
        }
        dropped
    }

    /// Start assigning transaction ids from `n` — a replacement node takes
    /// over from a recovered log's high-water mark so ids never collide
    /// with the dead node's.
    pub fn set_txn_start(&self, n: u64) {
        self.txn_counter.store(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::TriggerRule;
    use crate::workload::YcsbWorkload;
    use croesus_detect::ModelProfile;
    use croesus_video::{BoundingBox, VideoPreset};

    fn bank() -> Arc<TransactionsBank> {
        Arc::new(TransactionsBank::new().with_rule(TriggerRule {
            class_group: "any".into(),
            classes: vec![],
            requires_aux: None,
            template: Arc::new(YcsbWorkload::new()),
        }))
    }

    fn edge() -> EdgeNode {
        EdgeNode::new(
            SimulatedModel::new(ModelProfile::tiny_yolov3(), 7),
            bank(),
            0.10,
            7,
        )
    }

    fn edge_with(kind: ProtocolKind) -> EdgeNode {
        let core = ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(kind.default_lock_policy())),
        );
        EdgeNode::with_protocol(
            SimulatedModel::new(ModelProfile::tiny_yolov3(), 7),
            bank(),
            0.10,
            7,
            kind.build(core),
        )
    }

    fn det(class: &str, conf: f64, x: f64) -> Detection {
        Detection::new(class.into(), conf, BoundingBox::new(x, 0.4, 0.15, 0.15))
    }

    #[test]
    fn initial_stage_commits_one_txn_per_label() {
        let e = edge();
        let stage = e.run_initial_stage(0, &[det("car", 0.8, 0.1), det("car", 0.7, 0.5)]);
        assert_eq!(stage.committed, 2);
        assert_eq!(e.pending_frames(), 1);
        assert!(e.store().len() >= 6, "3 inserts per transaction");
    }

    #[test]
    fn local_finalize_keeps_inserts() {
        let e = edge();
        e.run_initial_stage(0, &[det("car", 0.9, 0.1)]);
        let before = e.store().len();
        let stage = e.finalize_local(0);
        assert_eq!(stage.committed, 1);
        assert_eq!(stage.counts, (1, 0, 0, 0));
        assert_eq!(e.store().len(), before);
        assert_eq!(e.pending_frames(), 0);
    }

    #[test]
    fn cloud_confirmation_keeps_state() {
        let e = edge();
        let label = det("car", 0.8, 0.1);
        e.run_initial_stage(3, std::slice::from_ref(&label));
        let before = e.store().len();
        let stage = e.deliver_cloud_labels(3, &[det("car", 0.95, 0.12)]);
        assert_eq!(stage.counts, (1, 0, 0, 0));
        assert_eq!(e.store().len(), before);
    }

    #[test]
    fn erroneous_label_state_is_removed() {
        let e = edge();
        e.run_initial_stage(4, &[det("car", 0.6, 0.1)]);
        let before = e.store().len();
        // Cloud saw nothing where the edge saw a car.
        let stage = e.deliver_cloud_labels(4, &[]);
        assert_eq!(stage.counts, (0, 0, 1, 0));
        assert_eq!(e.store().len(), before - 3, "erroneous inserts deleted");
    }

    #[test]
    fn missed_cloud_labels_spawn_fresh_transactions() {
        let e = edge();
        e.run_initial_stage(5, &[]);
        let stage = e.deliver_cloud_labels(5, &[det("car", 0.9, 0.7)]);
        assert_eq!(stage.counts.3, 1, "one missed label");
        assert_eq!(stage.committed, 1, "fresh txn ran both sections");
        assert!(e.store().len() >= 3);
    }

    #[test]
    fn detection_runs_small_model() {
        let e = edge();
        let v = VideoPreset::StreetTraffic.generate(10, 7);
        let (dets, latency) = e.detect(v.frame(0));
        let _ = dets;
        // Tiny YOLOv3 ≈ 190 ms.
        assert!(latency.as_millis_f64() > 140.0 && latency.as_millis_f64() < 240.0);
    }

    #[test]
    fn ms_ia_history_obligations_hold() {
        let e = edge();
        e.run_initial_stage(0, &[det("car", 0.8, 0.1)]);
        e.run_initial_stage(1, &[det("car", 0.8, 0.3)]);
        e.deliver_cloud_labels(0, &[det("car", 0.9, 0.1)]);
        e.finalize_local(1);
        let snap = e.protocol().stats().snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn delivering_labels_for_unknown_frame_is_safe() {
        let e = edge();
        let stage = e.deliver_cloud_labels(999, &[]);
        assert_eq!(stage.committed, 0);
        assert_eq!(stage.counts, (0, 0, 0, 0));
    }

    #[test]
    fn every_protocol_drives_the_same_frame_flow() {
        // The tentpole claim: the edge node works unchanged under any
        // protocol. YCSB keys are unique per transaction, so the
        // conflict-free flow commits identically everywhere.
        for kind in ProtocolKind::ALL {
            let e = edge_with(kind);
            let s0 = e.run_initial_stage(0, &[det("car", 0.8, 0.1)]);
            assert_eq!(s0.committed, 1, "{kind}");
            let fin = e.deliver_cloud_labels(0, &[det("car", 0.9, 0.1)]);
            assert_eq!(fin.committed, 1, "{kind}");
            let snap = e.protocol().stats().snapshot();
            assert_eq!(snap.commits, 1, "{kind}");
            assert_eq!(e.protocol().kind(), kind);
        }
    }

    /// The tentpole contract: a wave-parallel edge (workers > 1) commits
    /// the same transactions, produces the same responses in the same
    /// order, and leaves the same store state as the inline edge — for
    /// every protocol.
    #[test]
    fn pooled_edge_matches_inline_edge_exactly() {
        for kind in ProtocolKind::ALL {
            let inline_edge = edge_with(kind);
            let pooled_edge = edge_with(kind).with_worker_pool(WorkerPool::new(4));
            assert_eq!(pooled_edge.workers(), 4);
            let labels: Vec<Detection> = (0..12)
                .map(|i| det("car", 0.6 + 0.03 * i as f64, 0.05 * i as f64))
                .collect();
            for frame in 0..4u64 {
                let a = inline_edge.run_initial_stage(frame, &labels);
                let b = pooled_edge.run_initial_stage(frame, &labels);
                assert_eq!(a.committed, b.committed, "{kind} frame {frame}");
                assert_eq!(a.responses.len(), b.responses.len(), "{kind}");
                let fa = inline_edge.finalize_local(frame);
                let fb = pooled_edge.finalize_local(frame);
                assert_eq!(fa.committed, fb.committed, "{kind} frame {frame}");
            }
            let sa = inline_edge.protocol().stats().snapshot();
            let sb = pooled_edge.protocol().stats().snapshot();
            assert_eq!(sa.begun, sb.begun, "{kind}");
            assert_eq!(sa.commits, sb.commits, "{kind}");
            assert_eq!(sa.aborts, sb.aborts, "{kind}");
            assert_eq!(
                inline_edge.store().len(),
                pooled_edge.store().len(),
                "{kind}: store state must not depend on the worker count"
            );
        }
    }

    #[test]
    fn settle_prunes_entries_only_at_quiescence() {
        let e = edge();
        e.run_initial_stage(0, &[det("car", 0.8, 0.1)]);
        assert_eq!(e.settle(), 0, "a pending final section blocks settling");
        e.finalize_local(0);
        assert!(e.settle() > 0, "quiescent: retractable entries dropped");
        assert_eq!(e.settle(), 0, "nothing left for a second settle");
        assert_eq!(e.protocol().core().apologies().tracked_count(), 0);
    }

    #[test]
    fn txn_ids_continue_from_the_configured_start() {
        use croesus_wal::{Wal, WalConfig};
        let kind = ProtocolKind::MsIa;
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        let core = ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(kind.default_lock_policy())),
        )
        .with_wal(Arc::new(wal));
        let e = EdgeNode::with_protocol(
            SimulatedModel::new(ModelProfile::tiny_yolov3(), 7),
            bank(),
            0.10,
            7,
            kind.build(core),
        );
        e.set_txn_start(500);
        e.run_initial_stage(0, &[det("car", 0.8, 0.1)]);
        e.finalize_local(0);
        let r = croesus_wal::recover(&probe.durable());
        assert_eq!(r.next_txn, 501, "ids picked up at the configured start");
    }

    #[test]
    fn ms_sr_holds_locks_across_the_cloud_wait() {
        let e = edge_with(ProtocolKind::MsSr);
        e.run_initial_stage(0, &[det("car", 0.8, 0.1)]);
        // The pending transaction's final items are locked right now.
        assert!(e.protocol().core().locks().locked_keys() > 0);
        e.finalize_local(0);
        assert_eq!(e.protocol().core().locks().locked_keys(), 0);
    }
}
