//! The edge node (§3.3.2).
//!
//! The edge node runs the small model over incoming frames, consults the
//! transactions bank for the transactions each label triggers, processes
//! their initial sections immediately (initial commit → response to the
//! client), and keeps the pending final sections until the cloud labels
//! arrive (or the frame is locally finalized when thresholding decides not
//! to validate it).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use croesus_detect::{Detection, DetectionModel, SimulatedModel};
use croesus_sim::{DetRng, SimDuration};
use croesus_store::{KvStore, LockManager, LockPolicy, TxnId};
use croesus_txn::{
    MsIaExecutor, PendingFinal, RwSet, SectionCtx, SectionOutput, Sequencer, TxnError,
};
use croesus_video::Frame;

use crate::bank::TransactionsBank;
use crate::matching::{match_edge_to_cloud, FinalInput};

type FinalBody =
    Box<dyn FnOnce(&mut SectionCtx, &FinalInput) -> Result<SectionOutput, TxnError> + Send>;

struct PendingTxn {
    pending: PendingFinal,
    final_rw: RwSet,
    final_body: FinalBody,
    edge_label: Detection,
}

/// Result of processing a frame's initial stage.
pub struct InitialStage {
    /// Transactions whose initial sections committed.
    pub committed: u64,
    /// Wall-clock time spent executing initial sections.
    pub txn_latency: SimDuration,
    /// Responses produced for the client.
    pub responses: Vec<SectionOutput>,
}

/// Result of a frame's final stage.
pub struct FinalStage {
    /// Final sections committed (including fresh missed-label transactions).
    pub committed: u64,
    /// Wall-clock time spent executing final sections.
    pub txn_latency: SimDuration,
    /// Verdict counts: (correct, corrected, erroneous, missed).
    pub counts: (u64, u64, u64, u64),
}

/// The edge node.
pub struct EdgeNode {
    model: SimulatedModel,
    executor: MsIaExecutor,
    bank: Arc<TransactionsBank>,
    overlap_threshold: f64,
    txn_counter: AtomicU64,
    rng: Mutex<DetRng>,
    pending: Mutex<HashMap<u64, Vec<PendingTxn>>>,
}

impl EdgeNode {
    /// Create an edge node: small model, fresh store, MS-IA transaction
    /// processing (the paper's default consistency level, §5.1).
    pub fn new(
        model: SimulatedModel,
        bank: Arc<TransactionsBank>,
        overlap_threshold: f64,
        seed: u64,
    ) -> Self {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::Block));
        EdgeNode {
            model,
            executor: MsIaExecutor::new(store, locks),
            bank,
            overlap_threshold,
            txn_counter: AtomicU64::new(0),
            rng: Mutex::new(DetRng::new(seed).fork_named("edge-node")),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// The edge datastore.
    pub fn store(&self) -> &Arc<KvStore> {
        self.executor.store()
    }

    /// The MS-IA executor (stats, apologies).
    pub fn executor(&self) -> &MsIaExecutor {
        &self.executor
    }

    fn next_txn(&self) -> TxnId {
        TxnId(self.txn_counter.fetch_add(1, Ordering::Relaxed))
    }

    /// Run the small model over a frame.
    pub fn detect(&self, frame: &Frame) -> (Vec<Detection>, SimDuration) {
        (
            self.model.detect(frame),
            self.model.inference_latency(frame),
        )
    }

    /// Trigger and run the initial sections for the surviving labels of a
    /// frame. Transactions are ordered by the single-threaded sequencer so
    /// conflicting initial sections never overlap (§5.2.4).
    pub fn run_initial_stage(&self, frame_index: u64, labels: &[Detection]) -> InitialStage {
        let started = Instant::now();
        // Instantiate all triggered transactions.
        let mut instances = Vec::new();
        {
            let rng = self.rng.lock();
            for (li, label) in labels.iter().enumerate() {
                let mut lrng = rng.fork(frame_index << 20 | li as u64);
                for rule in self.bank.triggered_by_label(label) {
                    instances.push((label.clone(), rule.template.instantiate(label, &mut lrng)));
                }
            }
        }
        // Sequence by initial rw-set and execute.
        let rwsets: Vec<RwSet> = instances
            .iter()
            .map(|(_, i)| i.initial_rw.clone())
            .collect();
        let mut slots: Vec<Option<(Detection, crate::bank::TxnInstance)>> =
            instances.into_iter().map(Some).collect();
        let mut committed = 0u64;
        let mut responses = Vec::new();
        let mut pendings = Vec::new();
        Sequencer::run_batch::<TxnError>(&rwsets, |idx| {
            let (label, inst) = slots[idx].take().expect("each index runs once");
            let txn = self.next_txn();
            let body = inst.initial;
            match self.executor.run_initial(txn, &inst.initial_rw, body) {
                Ok((out, pending)) => {
                    committed += 1;
                    responses.push(out);
                    pendings.push(PendingTxn {
                        pending,
                        final_rw: inst.final_rw,
                        final_body: inst.final_section,
                        edge_label: label,
                    });
                }
                Err(_) => {
                    // Sequenced execution cannot conflict; an abort here
                    // would be an application error — drop the transaction.
                }
            }
            Ok(())
        })
        .expect("batch execution is infallible");
        self.pending.lock().insert(frame_index, pendings);
        InitialStage {
            committed,
            txn_latency: SimDuration::from_secs_f64(started.elapsed().as_secs_f64()),
            responses,
        }
    }

    /// Deliver the cloud labels for a validated frame: match them against
    /// the pending edge labels, run every pending final section with its
    /// verdict, and spawn fresh transactions for cloud labels the edge
    /// missed.
    pub fn deliver_cloud_labels(&self, frame_index: u64, cloud_labels: &[Detection]) -> FinalStage {
        let started = Instant::now();
        let pendings = self.pending.lock().remove(&frame_index).unwrap_or_default();
        let edge_labels: Vec<Detection> = pendings.iter().map(|p| p.edge_label.clone()).collect();
        let frame_match = match_edge_to_cloud(&edge_labels, cloud_labels, self.overlap_threshold);
        let (correct, corrected, erroneous) = {
            let c = frame_match.counts();
            (c.0 as u64, c.1 as u64, c.2 as u64)
        };

        let mut committed = 0u64;
        for (ptxn, input) in pendings.into_iter().zip(frame_match.inputs) {
            let body = ptxn.final_body;
            self.executor
                .run_final(ptxn.pending, &ptxn.final_rw, |ctx, _fctx| body(ctx, &input))
                .expect("final sections cannot abort");
            committed += 1;
        }

        // Cloud labels with no edge counterpart trigger fresh initial+final
        // pairs (§3.3.2, last paragraph).
        let missed = frame_match.missed.len() as u64;
        for (mi, label) in frame_match.missed.into_iter().enumerate() {
            let inst = {
                let rng = self.rng.lock();
                let mut lrng = rng.fork(frame_index << 20 | (1 << 19) | mi as u64);
                self.bank
                    .triggered_by_label(&label)
                    .first()
                    .map(|rule| rule.template.instantiate(&label, &mut lrng))
            };
            if let Some(inst) = inst {
                let txn = self.next_txn();
                if let Ok((_, pending)) =
                    self.executor
                        .run_initial(txn, &inst.initial_rw, inst.initial)
                {
                    let input = FinalInput::correct(label);
                    let body = inst.final_section;
                    self.executor
                        .run_final(pending, &inst.final_rw, |ctx, _| body(ctx, &input))
                        .expect("final sections cannot abort");
                    committed += 1;
                }
            }
        }

        FinalStage {
            committed,
            txn_latency: SimDuration::from_secs_f64(started.elapsed().as_secs_f64()),
            counts: (correct, corrected, erroneous, missed),
        }
    }

    /// Finalize a frame locally (thresholding decided not to validate):
    /// every pending final section runs with its edge label assumed
    /// correct.
    pub fn finalize_local(&self, frame_index: u64) -> FinalStage {
        let started = Instant::now();
        let pendings = self.pending.lock().remove(&frame_index).unwrap_or_default();
        let mut committed = 0u64;
        let n = pendings.len() as u64;
        for ptxn in pendings {
            let input = FinalInput::assumed_correct(ptxn.edge_label.clone());
            let body = ptxn.final_body;
            self.executor
                .run_final(ptxn.pending, &ptxn.final_rw, |ctx, _| body(ctx, &input))
                .expect("final sections cannot abort");
            committed += 1;
        }
        FinalStage {
            committed,
            txn_latency: SimDuration::from_secs_f64(started.elapsed().as_secs_f64()),
            counts: (n, 0, 0, 0),
        }
    }

    /// Number of frames with pending final sections.
    pub fn pending_frames(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::TriggerRule;
    use crate::workload::YcsbWorkload;
    use croesus_detect::ModelProfile;
    use croesus_video::{BoundingBox, VideoPreset};

    fn edge() -> EdgeNode {
        let bank = TransactionsBank::new().with_rule(TriggerRule {
            class_group: "any".into(),
            classes: vec![],
            requires_aux: None,
            template: Arc::new(YcsbWorkload::new()),
        });
        EdgeNode::new(
            SimulatedModel::new(ModelProfile::tiny_yolov3(), 7),
            Arc::new(bank),
            0.10,
            7,
        )
    }

    fn det(class: &str, conf: f64, x: f64) -> Detection {
        Detection::new(class.into(), conf, BoundingBox::new(x, 0.4, 0.15, 0.15))
    }

    #[test]
    fn initial_stage_commits_one_txn_per_label() {
        let e = edge();
        let stage = e.run_initial_stage(0, &[det("car", 0.8, 0.1), det("car", 0.7, 0.5)]);
        assert_eq!(stage.committed, 2);
        assert_eq!(e.pending_frames(), 1);
        assert!(e.store().len() >= 6, "3 inserts per transaction");
    }

    #[test]
    fn local_finalize_keeps_inserts() {
        let e = edge();
        e.run_initial_stage(0, &[det("car", 0.9, 0.1)]);
        let before = e.store().len();
        let stage = e.finalize_local(0);
        assert_eq!(stage.committed, 1);
        assert_eq!(stage.counts, (1, 0, 0, 0));
        assert_eq!(e.store().len(), before);
        assert_eq!(e.pending_frames(), 0);
    }

    #[test]
    fn cloud_confirmation_keeps_state() {
        let e = edge();
        let label = det("car", 0.8, 0.1);
        e.run_initial_stage(3, std::slice::from_ref(&label));
        let before = e.store().len();
        let stage = e.deliver_cloud_labels(3, &[det("car", 0.95, 0.12)]);
        assert_eq!(stage.counts, (1, 0, 0, 0));
        assert_eq!(e.store().len(), before);
    }

    #[test]
    fn erroneous_label_state_is_removed() {
        let e = edge();
        e.run_initial_stage(4, &[det("car", 0.6, 0.1)]);
        let before = e.store().len();
        // Cloud saw nothing where the edge saw a car.
        let stage = e.deliver_cloud_labels(4, &[]);
        assert_eq!(stage.counts, (0, 0, 1, 0));
        assert_eq!(e.store().len(), before - 3, "erroneous inserts deleted");
    }

    #[test]
    fn missed_cloud_labels_spawn_fresh_transactions() {
        let e = edge();
        e.run_initial_stage(5, &[]);
        let stage = e.deliver_cloud_labels(5, &[det("car", 0.9, 0.7)]);
        assert_eq!(stage.counts.3, 1, "one missed label");
        assert_eq!(stage.committed, 1, "fresh txn ran both sections");
        assert!(e.store().len() >= 3);
    }

    #[test]
    fn detection_runs_small_model() {
        let e = edge();
        let v = VideoPreset::StreetTraffic.generate(10, 7);
        let (dets, latency) = e.detect(v.frame(0));
        let _ = dets;
        // Tiny YOLOv3 ≈ 190 ms.
        assert!(latency.as_millis_f64() > 140.0 && latency.as_millis_f64() < 240.0);
    }

    #[test]
    fn ms_ia_history_obligations_hold() {
        let e = edge();
        e.run_initial_stage(0, &[det("car", 0.8, 0.1)]);
        e.run_initial_stage(1, &[det("car", 0.8, 0.3)]);
        e.deliver_cloud_labels(0, &[det("car", 0.9, 0.1)]);
        e.finalize_local(1);
        let snap = e.executor().stats().snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn delivering_labels_for_unknown_frame_is_safe() {
        let e = edge();
        let stage = e.deliver_cloud_labels(999, &[]);
        assert_eq!(stage.committed, 0);
        assert_eq!(stage.counts, (0, 0, 0, 0));
    }
}
