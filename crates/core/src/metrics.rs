//! Run metrics: the per-run quantities the paper's figures report, plus
//! the latency tail the obs exporter surfaces.
//!
//! The figure-facing numbers (means, F-score, bandwidth, correction
//! counts) are unchanged from the paper's reporting. On top of them the
//! collector now feeds [`croesus_obs::AtomicHistogram`]s for the
//! initial- and final-commit paths, so [`RunMetrics`] carries full
//! p50/p90/p99/p999 [`Quantiles`] — the same numbers the `perf_json`
//! bench bin exports next to the obs summary.

use croesus_net::BandwidthMeter;
use croesus_obs::{AtomicHistogram, Quantiles};
use croesus_sim::{OnlineStats, SimDuration};

/// Mean per-frame latency of each pipeline component, in milliseconds —
/// the stacked bars of Figure 2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Client→edge frame transfer ("edge latency").
    pub edge_link_ms: f64,
    /// Small-model inference ("edge detection latency").
    pub edge_detect_ms: f64,
    /// Initial transaction sections ("initial transaction latency").
    pub initial_txn_ms: f64,
    /// Edge→cloud transfer and label return ("cloud latency"), averaged
    /// over validated frames.
    pub cloud_link_ms: f64,
    /// Cloud-model inference ("cloud detection latency"), averaged over
    /// validated frames.
    pub cloud_detect_ms: f64,
    /// Final transaction sections ("final transaction latency").
    pub final_txn_ms: f64,
}

impl LatencyBreakdown {
    /// The initial-commit share: what the client sees in real time.
    pub fn initial_commit_ms(&self) -> f64 {
        self.edge_link_ms + self.edge_detect_ms + self.initial_txn_ms
    }
}

/// Counts of final-stage label verdicts over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorrectionCounts {
    /// Edge labels the cloud confirmed.
    pub correct: u64,
    /// Edge labels with the right box but wrong name (case 3).
    pub corrected: u64,
    /// Edge labels with no real object behind them (case 1).
    pub erroneous: u64,
    /// Cloud labels the edge missed entirely (fresh transactions).
    pub missed: u64,
}

impl CorrectionCounts {
    /// Total verdicts.
    pub fn total(&self) -> u64 {
        self.correct + self.corrected + self.erroneous + self.missed
    }
}

/// The complete result of one run (Croesus or a baseline) over one video.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// What ran, e.g. `"croesus v2 (0.4,0.6)"`.
    pub label: String,
    /// Component means.
    pub breakdown: LatencyBreakdown,
    /// Mean latency to initial commit, ms.
    pub initial_commit_ms: f64,
    /// Mean latency to final commit, ms.
    pub final_commit_ms: f64,
    /// 99th-percentile final-commit latency, ms (exact, from the sorted
    /// samples — the historical number, kept for continuity).
    pub final_commit_p99_ms: f64,
    /// Initial-commit latency tail (histogram-derived, bounded relative
    /// error).
    pub initial_commit_quantiles: Quantiles,
    /// Final-commit latency tail (histogram-derived, bounded relative
    /// error).
    pub final_commit_quantiles: Quantiles,
    /// F-score of the client-observed labels against the cloud reference.
    pub f_score: f64,
    /// Precision component.
    pub precision: f64,
    /// Recall component.
    pub recall: f64,
    /// Bandwidth utilization (frames sent / frames processed).
    pub bandwidth_utilization: f64,
    /// Bytes shipped edge→cloud.
    pub bytes_sent: u64,
    /// Transfer cost in dollars.
    pub transfer_dollars: f64,
    /// Multi-stage transactions committed.
    pub transactions_committed: u64,
    /// Validated frames whose cloud labels never arrived (finalized
    /// locally after the timeout).
    pub cloud_timeouts: u64,
    /// Final-stage verdict counts.
    pub corrections: CorrectionCounts,
}

/// Accumulates per-frame observations into a [`RunMetrics`].
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    edge_link: OnlineStats,
    edge_detect: OnlineStats,
    initial_txn: OnlineStats,
    cloud_link: OnlineStats,
    cloud_detect: OnlineStats,
    final_txn: OnlineStats,
    initial_commit: OnlineStats,
    final_commit: Vec<f64>,
    initial_commit_hist: AtomicHistogram,
    final_commit_hist: AtomicHistogram,
    pr: croesus_sim::stats::PrecisionRecall,
    corrections: CorrectionCounts,
    transactions: u64,
    cloud_timeouts: u64,
}

impl MetricsCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Record one frame that stayed at the edge.
    #[allow(clippy::too_many_arguments)]
    pub fn record_edge_frame(
        &mut self,
        edge_link: SimDuration,
        edge_detect: SimDuration,
        initial_txn: SimDuration,
        final_txn: SimDuration,
    ) {
        self.edge_link.push_duration(edge_link);
        self.edge_detect.push_duration(edge_detect);
        self.initial_txn.push_duration(initial_txn);
        self.final_txn.push_duration(final_txn);
        let initial = edge_link + edge_detect + initial_txn;
        self.initial_commit.push_duration(initial);
        self.initial_commit_hist.record_ms(initial.as_millis_f64());
        let final_ms = (initial + final_txn).as_millis_f64();
        self.final_commit.push(final_ms);
        self.final_commit_hist.record_ms(final_ms);
    }

    /// Record one frame that was validated at the cloud.
    #[allow(clippy::too_many_arguments)]
    pub fn record_validated_frame(
        &mut self,
        edge_link: SimDuration,
        edge_detect: SimDuration,
        initial_txn: SimDuration,
        cloud_link: SimDuration,
        cloud_detect: SimDuration,
        final_txn: SimDuration,
    ) {
        self.edge_link.push_duration(edge_link);
        self.edge_detect.push_duration(edge_detect);
        self.initial_txn.push_duration(initial_txn);
        self.cloud_link.push_duration(cloud_link);
        self.cloud_detect.push_duration(cloud_detect);
        self.final_txn.push_duration(final_txn);
        let initial = edge_link + edge_detect + initial_txn;
        self.initial_commit.push_duration(initial);
        self.initial_commit_hist.record_ms(initial.as_millis_f64());
        let final_ms = (initial + cloud_link + cloud_detect + final_txn).as_millis_f64();
        self.final_commit.push(final_ms);
        self.final_commit_hist.record_ms(final_ms);
    }

    /// Record a frame's accuracy counts.
    pub fn record_accuracy(&mut self, pr: croesus_sim::stats::PrecisionRecall) {
        self.pr.add(pr);
    }

    /// Record final-stage verdicts.
    pub fn record_corrections(
        &mut self,
        correct: u64,
        corrected: u64,
        erroneous: u64,
        missed: u64,
    ) {
        self.corrections.correct += correct;
        self.corrections.corrected += corrected;
        self.corrections.erroneous += erroneous;
        self.corrections.missed += missed;
    }

    /// Record committed transactions.
    pub fn record_transactions(&mut self, n: u64) {
        self.transactions += n;
    }

    /// Record a validated frame whose cloud labels never arrived.
    pub fn record_cloud_timeout(&mut self) {
        self.cloud_timeouts += 1;
    }

    /// Produce the final metrics.
    pub fn finish(self, label: String, meter: &BandwidthMeter) -> RunMetrics {
        let final_summary = croesus_sim::Summary::from_slice(&self.final_commit);
        RunMetrics {
            label,
            breakdown: LatencyBreakdown {
                edge_link_ms: self.edge_link.mean(),
                edge_detect_ms: self.edge_detect.mean(),
                initial_txn_ms: self.initial_txn.mean(),
                cloud_link_ms: self.cloud_link.mean(),
                cloud_detect_ms: self.cloud_detect.mean(),
                final_txn_ms: self.final_txn.mean(),
            },
            initial_commit_ms: self.initial_commit.mean(),
            final_commit_ms: final_summary.as_ref().map_or(0.0, |s| s.mean()),
            final_commit_p99_ms: final_summary.as_ref().map_or(0.0, |s| s.percentile(99.0)),
            initial_commit_quantiles: self.initial_commit_hist.quantiles_ms(),
            final_commit_quantiles: self.final_commit_hist.quantiles_ms(),
            f_score: self.pr.f_score(),
            precision: self.pr.precision(),
            recall: self.pr.recall(),
            bandwidth_utilization: meter.bandwidth_utilization(),
            bytes_sent: meter.bytes_sent(),
            transfer_dollars: meter.dollars(),
            transactions_committed: self.transactions,
            cloud_timeouts: self.cloud_timeouts,
            corrections: self.corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_sim::stats::PrecisionRecall;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn edge_frame_composes_latencies() {
        let mut c = MetricsCollector::new();
        c.record_edge_frame(ms(8), ms(190), ms(1), ms(1));
        let m = c.finish("edge".into(), &BandwidthMeter::new());
        assert!((m.initial_commit_ms - 199.0).abs() < 1e-9);
        assert!((m.final_commit_ms - 200.0).abs() < 1e-9);
        assert_eq!(m.breakdown.cloud_detect_ms, 0.0);
    }

    #[test]
    fn validated_frame_includes_cloud_path() {
        let mut c = MetricsCollector::new();
        c.record_validated_frame(ms(8), ms(190), ms(1), ms(130), ms(1120), ms(1));
        let m = c.finish("val".into(), &BandwidthMeter::new());
        assert!((m.final_commit_ms - 1450.0).abs() < 1e-9);
        assert!((m.initial_commit_ms - 199.0).abs() < 1e-9);
        assert!((m.breakdown.initial_commit_ms() - 199.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_frames_average() {
        let mut c = MetricsCollector::new();
        c.record_edge_frame(ms(10), ms(200), ms(0), ms(0));
        c.record_validated_frame(ms(10), ms(200), ms(0), ms(100), ms(1000), ms(0));
        let m = c.finish("mix".into(), &BandwidthMeter::new());
        assert!((m.final_commit_ms - (210.0 + 1310.0) / 2.0).abs() < 1e-9);
        // Cloud components average over validated frames only.
        assert!((m.breakdown.cloud_detect_ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_aggregates_counts() {
        let mut c = MetricsCollector::new();
        c.record_accuracy(PrecisionRecall {
            tp: 9,
            fp: 1,
            fn_: 0,
        });
        c.record_accuracy(PrecisionRecall {
            tp: 0,
            fp: 0,
            fn_: 1,
        });
        let m = c.finish("acc".into(), &BandwidthMeter::new());
        assert!((m.precision - 0.9).abs() < 1e-12);
        assert!((m.recall - 0.9).abs() < 1e-12);
        assert!(m.f_score > 0.89);
    }

    #[test]
    fn corrections_and_transactions_accumulate() {
        let mut c = MetricsCollector::new();
        c.record_corrections(5, 2, 1, 3);
        c.record_corrections(1, 0, 0, 0);
        c.record_transactions(7);
        let m = c.finish("x".into(), &BandwidthMeter::new());
        assert_eq!(m.corrections.correct, 6);
        assert_eq!(m.corrections.total(), 12);
        assert_eq!(m.transactions_committed, 7);
    }

    #[test]
    fn commit_quantiles_track_the_recorded_tail() {
        let mut c = MetricsCollector::new();
        // 99 fast edge frames and one slow validated frame: the final-
        // commit p99/p999 must land on the slow one, p50 on the fast path.
        for _ in 0..99 {
            c.record_edge_frame(ms(10), ms(190), ms(0), ms(0));
        }
        c.record_validated_frame(ms(10), ms(190), ms(0), ms(130), ms(1120), ms(0));
        let m = c.finish("tail".into(), &BandwidthMeter::new());
        let q = m.final_commit_quantiles;
        assert!((q.p50 - 200.0).abs() / 200.0 < 0.1, "p50={}", q.p50);
        // One slow frame in a hundred: p99 still rides the fast path,
        // p999 must land on the outlier.
        assert!((q.p99 - 200.0).abs() / 200.0 < 0.1, "p99={}", q.p99);
        assert!((q.p999 - 1450.0).abs() / 1450.0 < 0.1, "p999={}", q.p999);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.p999);
        // The histogram p99 agrees with the exact sorted-sample p99
        // within the bucket's bounded relative error.
        assert!((q.p99 - m.final_commit_p99_ms).abs() / m.final_commit_p99_ms < 0.1);
        // Initial commit never includes the cloud leg.
        assert!(m.initial_commit_quantiles.p999 < 250.0);
    }

    #[test]
    fn empty_run_has_zero_quantiles() {
        let m = MetricsCollector::new().finish("empty".into(), &BandwidthMeter::new());
        assert_eq!(m.final_commit_quantiles, croesus_obs::Quantiles::default());
        assert_eq!(m.initial_commit_quantiles.p50, 0.0);
    }

    #[test]
    fn meter_carries_bu_and_cost() {
        let mut meter = BandwidthMeter::new();
        meter.record_processed();
        meter.record_processed();
        meter.record_sent(100, 0.5);
        let m = MetricsCollector::new().finish("bu".into(), &meter);
        assert!((m.bandwidth_utilization - 0.5).abs() < 1e-12);
        assert_eq!(m.bytes_sent, 100);
        assert!((m.transfer_dollars - 0.5).abs() < 1e-12);
    }
}
