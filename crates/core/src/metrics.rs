//! Run metrics: the quantities the paper's figures report.

use croesus_net::BandwidthMeter;
use croesus_sim::{OnlineStats, SimDuration};

/// Mean per-frame latency of each pipeline component, in milliseconds —
/// the stacked bars of Figure 2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Client→edge frame transfer ("edge latency").
    pub edge_link_ms: f64,
    /// Small-model inference ("edge detection latency").
    pub edge_detect_ms: f64,
    /// Initial transaction sections ("initial transaction latency").
    pub initial_txn_ms: f64,
    /// Edge→cloud transfer and label return ("cloud latency"), averaged
    /// over validated frames.
    pub cloud_link_ms: f64,
    /// Cloud-model inference ("cloud detection latency"), averaged over
    /// validated frames.
    pub cloud_detect_ms: f64,
    /// Final transaction sections ("final transaction latency").
    pub final_txn_ms: f64,
}

impl LatencyBreakdown {
    /// The initial-commit share: what the client sees in real time.
    pub fn initial_commit_ms(&self) -> f64 {
        self.edge_link_ms + self.edge_detect_ms + self.initial_txn_ms
    }
}

/// Counts of final-stage label verdicts over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorrectionCounts {
    /// Edge labels the cloud confirmed.
    pub correct: u64,
    /// Edge labels with the right box but wrong name (case 3).
    pub corrected: u64,
    /// Edge labels with no real object behind them (case 1).
    pub erroneous: u64,
    /// Cloud labels the edge missed entirely (fresh transactions).
    pub missed: u64,
}

impl CorrectionCounts {
    /// Total verdicts.
    pub fn total(&self) -> u64 {
        self.correct + self.corrected + self.erroneous + self.missed
    }
}

/// The complete result of one run (Croesus or a baseline) over one video.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// What ran, e.g. `"croesus v2 (0.4,0.6)"`.
    pub label: String,
    /// Component means.
    pub breakdown: LatencyBreakdown,
    /// Mean latency to initial commit, ms.
    pub initial_commit_ms: f64,
    /// Mean latency to final commit, ms.
    pub final_commit_ms: f64,
    /// 99th-percentile final-commit latency, ms.
    pub final_commit_p99_ms: f64,
    /// F-score of the client-observed labels against the cloud reference.
    pub f_score: f64,
    /// Precision component.
    pub precision: f64,
    /// Recall component.
    pub recall: f64,
    /// Bandwidth utilization (frames sent / frames processed).
    pub bandwidth_utilization: f64,
    /// Bytes shipped edge→cloud.
    pub bytes_sent: u64,
    /// Transfer cost in dollars.
    pub transfer_dollars: f64,
    /// Multi-stage transactions committed.
    pub transactions_committed: u64,
    /// Validated frames whose cloud labels never arrived (finalized
    /// locally after the timeout).
    pub cloud_timeouts: u64,
    /// Final-stage verdict counts.
    pub corrections: CorrectionCounts,
}

/// Accumulates per-frame observations into a [`RunMetrics`].
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    edge_link: OnlineStats,
    edge_detect: OnlineStats,
    initial_txn: OnlineStats,
    cloud_link: OnlineStats,
    cloud_detect: OnlineStats,
    final_txn: OnlineStats,
    initial_commit: OnlineStats,
    final_commit: Vec<f64>,
    pr: croesus_sim::stats::PrecisionRecall,
    corrections: CorrectionCounts,
    transactions: u64,
    cloud_timeouts: u64,
}

impl MetricsCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Record one frame that stayed at the edge.
    #[allow(clippy::too_many_arguments)]
    pub fn record_edge_frame(
        &mut self,
        edge_link: SimDuration,
        edge_detect: SimDuration,
        initial_txn: SimDuration,
        final_txn: SimDuration,
    ) {
        self.edge_link.push_duration(edge_link);
        self.edge_detect.push_duration(edge_detect);
        self.initial_txn.push_duration(initial_txn);
        self.final_txn.push_duration(final_txn);
        let initial = edge_link + edge_detect + initial_txn;
        self.initial_commit.push_duration(initial);
        self.final_commit
            .push((initial + final_txn).as_millis_f64());
    }

    /// Record one frame that was validated at the cloud.
    #[allow(clippy::too_many_arguments)]
    pub fn record_validated_frame(
        &mut self,
        edge_link: SimDuration,
        edge_detect: SimDuration,
        initial_txn: SimDuration,
        cloud_link: SimDuration,
        cloud_detect: SimDuration,
        final_txn: SimDuration,
    ) {
        self.edge_link.push_duration(edge_link);
        self.edge_detect.push_duration(edge_detect);
        self.initial_txn.push_duration(initial_txn);
        self.cloud_link.push_duration(cloud_link);
        self.cloud_detect.push_duration(cloud_detect);
        self.final_txn.push_duration(final_txn);
        let initial = edge_link + edge_detect + initial_txn;
        self.initial_commit.push_duration(initial);
        self.final_commit
            .push((initial + cloud_link + cloud_detect + final_txn).as_millis_f64());
    }

    /// Record a frame's accuracy counts.
    pub fn record_accuracy(&mut self, pr: croesus_sim::stats::PrecisionRecall) {
        self.pr.add(pr);
    }

    /// Record final-stage verdicts.
    pub fn record_corrections(
        &mut self,
        correct: u64,
        corrected: u64,
        erroneous: u64,
        missed: u64,
    ) {
        self.corrections.correct += correct;
        self.corrections.corrected += corrected;
        self.corrections.erroneous += erroneous;
        self.corrections.missed += missed;
    }

    /// Record committed transactions.
    pub fn record_transactions(&mut self, n: u64) {
        self.transactions += n;
    }

    /// Record a validated frame whose cloud labels never arrived.
    pub fn record_cloud_timeout(&mut self) {
        self.cloud_timeouts += 1;
    }

    /// Produce the final metrics.
    pub fn finish(self, label: String, meter: &BandwidthMeter) -> RunMetrics {
        let final_summary = croesus_sim::Summary::from_slice(&self.final_commit);
        RunMetrics {
            label,
            breakdown: LatencyBreakdown {
                edge_link_ms: self.edge_link.mean(),
                edge_detect_ms: self.edge_detect.mean(),
                initial_txn_ms: self.initial_txn.mean(),
                cloud_link_ms: self.cloud_link.mean(),
                cloud_detect_ms: self.cloud_detect.mean(),
                final_txn_ms: self.final_txn.mean(),
            },
            initial_commit_ms: self.initial_commit.mean(),
            final_commit_ms: final_summary.as_ref().map_or(0.0, |s| s.mean()),
            final_commit_p99_ms: final_summary.as_ref().map_or(0.0, |s| s.percentile(99.0)),
            f_score: self.pr.f_score(),
            precision: self.pr.precision(),
            recall: self.pr.recall(),
            bandwidth_utilization: meter.bandwidth_utilization(),
            bytes_sent: meter.bytes_sent(),
            transfer_dollars: meter.dollars(),
            transactions_committed: self.transactions,
            cloud_timeouts: self.cloud_timeouts,
            corrections: self.corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_sim::stats::PrecisionRecall;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn edge_frame_composes_latencies() {
        let mut c = MetricsCollector::new();
        c.record_edge_frame(ms(8), ms(190), ms(1), ms(1));
        let m = c.finish("edge".into(), &BandwidthMeter::new());
        assert!((m.initial_commit_ms - 199.0).abs() < 1e-9);
        assert!((m.final_commit_ms - 200.0).abs() < 1e-9);
        assert_eq!(m.breakdown.cloud_detect_ms, 0.0);
    }

    #[test]
    fn validated_frame_includes_cloud_path() {
        let mut c = MetricsCollector::new();
        c.record_validated_frame(ms(8), ms(190), ms(1), ms(130), ms(1120), ms(1));
        let m = c.finish("val".into(), &BandwidthMeter::new());
        assert!((m.final_commit_ms - 1450.0).abs() < 1e-9);
        assert!((m.initial_commit_ms - 199.0).abs() < 1e-9);
        assert!((m.breakdown.initial_commit_ms() - 199.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_frames_average() {
        let mut c = MetricsCollector::new();
        c.record_edge_frame(ms(10), ms(200), ms(0), ms(0));
        c.record_validated_frame(ms(10), ms(200), ms(0), ms(100), ms(1000), ms(0));
        let m = c.finish("mix".into(), &BandwidthMeter::new());
        assert!((m.final_commit_ms - (210.0 + 1310.0) / 2.0).abs() < 1e-9);
        // Cloud components average over validated frames only.
        assert!((m.breakdown.cloud_detect_ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_aggregates_counts() {
        let mut c = MetricsCollector::new();
        c.record_accuracy(PrecisionRecall {
            tp: 9,
            fp: 1,
            fn_: 0,
        });
        c.record_accuracy(PrecisionRecall {
            tp: 0,
            fp: 0,
            fn_: 1,
        });
        let m = c.finish("acc".into(), &BandwidthMeter::new());
        assert!((m.precision - 0.9).abs() < 1e-12);
        assert!((m.recall - 0.9).abs() < 1e-12);
        assert!(m.f_score > 0.89);
    }

    #[test]
    fn corrections_and_transactions_accumulate() {
        let mut c = MetricsCollector::new();
        c.record_corrections(5, 2, 1, 3);
        c.record_corrections(1, 0, 0, 0);
        c.record_transactions(7);
        let m = c.finish("x".into(), &BandwidthMeter::new());
        assert_eq!(m.corrections.correct, 6);
        assert_eq!(m.corrections.total(), 12);
        assert_eq!(m.transactions_committed, 7);
    }

    #[test]
    fn meter_carries_bu_and_cost() {
        let mut meter = BandwidthMeter::new();
        meter.record_processed();
        meter.record_processed();
        meter.record_sent(100, 0.5);
        let m = MetricsCollector::new().finish("bu".into(), &meter);
        assert!((m.bandwidth_utilization - 0.5).abs() < 1e-12);
        assert_eq!(m.bytes_sent, 100);
        assert!((m.transfer_dollars - 0.5).abs() < 1e-12);
    }
}
