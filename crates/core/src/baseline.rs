//! The state-of-the-art baselines of §5.
//!
//! * **Edge baseline** — "a performance-centric video analytics application
//!   where a compact model (Tiny YOLOv3) is deployed on the edge machine
//!   for lower latency." Labels are whatever the edge model says (above a
//!   confidence filter); transactions commit in one stage.
//! * **Cloud baseline** — "an accuracy-centric video analytics application
//!   where a computationally expensive model (YOLOv3) is deployed on a
//!   resourceful cloud machine." Every frame crosses the edge→cloud link
//!   and waits for the big model; by the paper's ground-truth convention
//!   its accuracy is 1.0.
//!
//! Both are [`DeploymentMode`](crate::system::DeploymentMode)s of the
//! unified [`Croesus`](crate::system::Croesus) builder (so they run under
//! any protocol and any edge-fleet size, and accept a
//! [`croesus_net::PayloadCodec`] for Figure 6(c)'s hybrid variants):
//! `Croesus::edge_only(config).run()` / `Croesus::cloud_only(config).run()`.
//! The deprecated free-function shims are gone.

/// Default edge-baseline confidence filter: detections below this are
/// dropped (the conventional 0.5 deployment threshold; Figure 3 shows the
/// (0.5, 0.5) Croesus pair matching this baseline's accuracy).
pub const EDGE_BASELINE_CONFIDENCE: f64 = 0.5;

#[cfg(test)]
mod tests {
    use crate::config::CroesusConfig;
    use crate::metrics::RunMetrics;
    use crate::system::Croesus;
    use crate::threshold::ThresholdPair;
    use croesus_net::PayloadCodec;
    use croesus_video::VideoPreset;

    fn cfg(preset: VideoPreset) -> CroesusConfig {
        CroesusConfig::new(preset, ThresholdPair::new(0.4, 0.6)).with_frames(60)
    }

    fn edge_only(config: &CroesusConfig) -> RunMetrics {
        Croesus::edge_only(config).run()
    }

    fn cloud_only(config: &CroesusConfig) -> RunMetrics {
        Croesus::cloud_only(config).run()
    }

    #[test]
    fn edge_baseline_is_fast_but_inaccurate() {
        let m = edge_only(&cfg(VideoPreset::MallSurveillance));
        assert!(
            m.final_commit_ms < 300.0,
            "edge path only: {}",
            m.final_commit_ms
        );
        assert!(m.f_score < 0.8, "tiny model on a hard video: {}", m.f_score);
        assert_eq!(m.bandwidth_utilization, 0.0);
        assert_eq!(m.bytes_sent, 0);
    }

    #[test]
    fn cloud_baseline_is_slow_but_perfect() {
        let m = cloud_only(&cfg(VideoPreset::MallSurveillance));
        assert!(
            m.final_commit_ms > 1000.0,
            "cloud path: {}",
            m.final_commit_ms
        );
        assert!((m.f_score - 1.0).abs() < 1e-9);
        assert!((m.bandwidth_utilization - 1.0).abs() < 1e-9);
        assert!(m.bytes_sent > 0);
        assert!(m.transfer_dollars > 0.0);
    }

    #[test]
    fn edge_baseline_on_easy_video_is_decent() {
        let easy = edge_only(&cfg(VideoPreset::AirportRunway));
        let hard = edge_only(&cfg(VideoPreset::MallSurveillance));
        assert!(
            easy.f_score > hard.f_score + 0.2,
            "airport {} vs mall {}",
            easy.f_score,
            hard.f_score
        );
    }

    #[test]
    fn compression_reduces_cloud_baseline_latency_slightly() {
        let raw = cloud_only(&cfg(VideoPreset::ParkDog));
        let compressed =
            cloud_only(&cfg(VideoPreset::ParkDog).with_codec(PayloadCodec::compressed()));
        assert!(compressed.bytes_sent < raw.bytes_sent);
        // Detection dominates, so the improvement is small (§5.2.5).
        assert!(compressed.final_commit_ms < raw.final_commit_ms);
        let gain = raw.final_commit_ms - compressed.final_commit_ms;
        assert!(gain < 100.0, "small improvement expected, got {gain}");
    }

    #[test]
    fn baselines_are_reproducible() {
        let a = edge_only(&cfg(VideoPreset::StreetTraffic));
        let b = edge_only(&cfg(VideoPreset::StreetTraffic));
        assert_eq!(a.f_score, b.f_score);
    }
}
