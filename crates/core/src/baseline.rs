//! The state-of-the-art baselines of §5.
//!
//! * **Edge baseline** — "a performance-centric video analytics application
//!   where a compact model (Tiny YOLOv3) is deployed on the edge machine
//!   for lower latency." Labels are whatever the edge model says (above a
//!   confidence filter); transactions commit in one stage.
//! * **Cloud baseline** — "an accuracy-centric video analytics application
//!   where a computationally expensive model (YOLOv3) is deployed on a
//!   resourceful cloud machine." Every frame crosses the edge→cloud link
//!   and waits for the big model; by the paper's ground-truth convention
//!   its accuracy is 1.0.
//!
//! Both accept a [`PayloadCodec`] so Figure 6(c)'s hybrid variants
//! (cloud+compression, cloud+compression+difference) fall out of the same
//! code path.

use croesus_detect::{score_against, Detection, ModelProfile, SimulatedModel};
use croesus_net::BandwidthMeter;
use croesus_sim::DetRng;
use croesus_video::LabelClass;

use crate::cloud::CloudNode;
use crate::config::CroesusConfig;
use crate::edge::EdgeNode;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::pipeline::evaluation_bank;

/// Default edge-baseline confidence filter: detections below this are
/// dropped (the conventional 0.5 deployment threshold; Figure 3 shows the
/// (0.5, 0.5) Croesus pair matching this baseline's accuracy).
pub const EDGE_BASELINE_CONFIDENCE: f64 = 0.5;

/// Run the edge-only baseline over the configured video.
pub fn run_edge_only(config: &CroesusConfig) -> RunMetrics {
    let video = config.preset.generate(config.num_frames, config.seed);
    let query: LabelClass = video.query_class().clone();
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), config.seed ^ 0xE)
        .with_hardware_factor(config.setup.edge.hardware_factor());
    let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
    let edge = EdgeNode::new(
        edge_model,
        evaluation_bank(),
        config.overlap_threshold,
        config.seed,
    );
    let topology = config.setup.topology();
    let mut link_rng = DetRng::new(config.seed).fork_named("links");

    let mut meter = BandwidthMeter::new();
    let mut collector = MetricsCollector::new();

    for frame in video.frames() {
        meter.record_processed();
        let edge_link = topology
            .client_edge
            .transfer_latency(frame.bytes, &mut link_rng);
        let (detections, edge_detect) = edge.detect(frame);
        let surviving: Vec<Detection> = detections
            .into_iter()
            .filter(|d| d.confidence >= EDGE_BASELINE_CONFIDENCE)
            .collect();
        let initial = edge.run_initial_stage(frame.index, &surviving);
        collector.record_transactions(initial.committed);
        // Single-stage: finalize immediately with the edge labels.
        let fin = edge.finalize_local(frame.index);
        collector.record_edge_frame(edge_link, edge_detect, initial.txn_latency, fin.txn_latency);

        // Score against the cloud reference (computed but never paid for).
        let (cloud_labels, _) = cloud.process(frame);
        let cloud_query: Vec<Detection> = cloud_labels
            .into_iter()
            .filter(|l| l.is_class(&query))
            .collect();
        let edge_query: Vec<Detection> = surviving
            .into_iter()
            .filter(|l| l.is_class(&query))
            .collect();
        collector.record_accuracy(score_against(
            &edge_query,
            &cloud_query,
            &query,
            config.overlap_threshold,
        ));
    }
    collector.finish(format!("edge-only {}", config.preset.paper_id()), &meter)
}

/// Run the cloud-only baseline (optionally with compression/difference
/// pre-processing at the edge) over the configured video.
pub fn run_cloud_only(config: &CroesusConfig) -> RunMetrics {
    let video = config.preset.generate(config.num_frames, config.seed);
    let query: LabelClass = video.query_class().clone();
    let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
    // The cloud baseline still needs an edge datastore for its
    // transactions: the data lives at the edge partition.
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), config.seed ^ 0xE);
    let edge = EdgeNode::new(
        edge_model,
        evaluation_bank(),
        config.overlap_threshold,
        config.seed,
    );
    let topology = config.setup.topology();
    let mut link_rng = DetRng::new(config.seed).fork_named("links");

    let mut meter = BandwidthMeter::new();
    let mut collector = MetricsCollector::new();

    for frame in video.frames() {
        meter.record_processed();
        let edge_link = topology
            .client_edge
            .transfer_latency(frame.bytes, &mut link_rng);
        let is_reference = frame.index.is_multiple_of(30);
        let encoded = config.codec.encode(frame.bytes, is_reference);
        let up = topology
            .edge_cloud
            .transfer_latency(encoded.bytes, &mut link_rng)
            + encoded.encode_latency;
        let down = topology.edge_cloud.transfer_latency(2_048, &mut link_rng);
        let (cloud_labels, cloud_detect) = cloud.process(frame);
        meter.record_sent(
            encoded.bytes,
            topology.edge_cloud.transfer_cost(encoded.bytes),
        );

        // Transactions trigger only after the accurate labels arrive; both
        // sections run back-to-back with the correct input.
        let cloud_query: Vec<Detection> = cloud_labels
            .iter()
            .filter(|l| l.is_class(&query))
            .cloned()
            .collect();
        let initial = edge.run_initial_stage(frame.index, &cloud_labels);
        collector.record_transactions(initial.committed);
        let fin = edge.finalize_local(frame.index);

        collector.record_validated_frame(
            edge_link,
            croesus_sim::SimDuration::ZERO,
            initial.txn_latency,
            up + down,
            cloud_detect,
            fin.txn_latency,
        );
        // By the ground-truth convention, cloud output scores perfectly.
        collector.record_accuracy(score_against(
            &cloud_query,
            &cloud_query,
            &query,
            config.overlap_threshold,
        ));
    }
    collector.finish(
        format!(
            "cloud-only{} {}",
            config.codec.label(),
            config.preset.paper_id()
        ),
        &meter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdPair;
    use croesus_net::PayloadCodec;
    use croesus_video::VideoPreset;

    fn cfg(preset: VideoPreset) -> CroesusConfig {
        CroesusConfig::new(preset, ThresholdPair::new(0.4, 0.6)).with_frames(60)
    }

    #[test]
    fn edge_baseline_is_fast_but_inaccurate() {
        let m = run_edge_only(&cfg(VideoPreset::MallSurveillance));
        assert!(
            m.final_commit_ms < 300.0,
            "edge path only: {}",
            m.final_commit_ms
        );
        assert!(m.f_score < 0.8, "tiny model on a hard video: {}", m.f_score);
        assert_eq!(m.bandwidth_utilization, 0.0);
        assert_eq!(m.bytes_sent, 0);
    }

    #[test]
    fn cloud_baseline_is_slow_but_perfect() {
        let m = run_cloud_only(&cfg(VideoPreset::MallSurveillance));
        assert!(
            m.final_commit_ms > 1000.0,
            "cloud path: {}",
            m.final_commit_ms
        );
        assert!((m.f_score - 1.0).abs() < 1e-9);
        assert!((m.bandwidth_utilization - 1.0).abs() < 1e-9);
        assert!(m.bytes_sent > 0);
        assert!(m.transfer_dollars > 0.0);
    }

    #[test]
    fn edge_baseline_on_easy_video_is_decent() {
        let easy = run_edge_only(&cfg(VideoPreset::AirportRunway));
        let hard = run_edge_only(&cfg(VideoPreset::MallSurveillance));
        assert!(
            easy.f_score > hard.f_score + 0.2,
            "airport {} vs mall {}",
            easy.f_score,
            hard.f_score
        );
    }

    #[test]
    fn compression_reduces_cloud_baseline_latency_slightly() {
        let raw = run_cloud_only(&cfg(VideoPreset::ParkDog));
        let compressed =
            run_cloud_only(&cfg(VideoPreset::ParkDog).with_codec(PayloadCodec::compressed()));
        assert!(compressed.bytes_sent < raw.bytes_sent);
        // Detection dominates, so the improvement is small (§5.2.5).
        assert!(compressed.final_commit_ms < raw.final_commit_ms);
        let gain = raw.final_commit_ms - compressed.final_commit_ms;
        assert!(gain < 100.0, "small improvement expected, got {gain}");
    }

    #[test]
    fn baselines_are_reproducible() {
        let a = run_edge_only(&cfg(VideoPreset::StreetTraffic));
        let b = run_edge_only(&cfg(VideoPreset::StreetTraffic));
        assert_eq!(a.f_score, b.f_score);
    }
}
