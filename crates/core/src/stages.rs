//! Generalized multi-stage processing (§3.5).
//!
//! "In a general multi-stage model, there are m stages s₀, …, s_{m−1}. …
//! Each stage contains a video/image detection model — where typically the
//! model at stage sᵢ has better detection than model mⱼ, where j < i."
//! A frame flows from stage to stage; bandwidth thresholding may stop the
//! sequence early, at which point the remaining transaction sections run
//! with the labels of the deepest stage reached.
//!
//! The paper keeps two stages because the edge-cloud asymmetry is two-fold;
//! this module lets that claim be tested: `examples`/harnesses compare a
//! 2-stage edge→cloud chain with a 3-stage edge→fog→cloud chain.

use croesus_detect::{score_against, Detection, DetectionModel, SimulatedModel};
use croesus_net::Link;
use croesus_sim::stats::PrecisionRecall;
use croesus_sim::{DetRng, OnlineStats};
use croesus_video::{LabelClass, Video};

use crate::threshold::ThresholdPair;

/// One stage of a processing chain.
pub struct Stage {
    /// Stage name for reports ("edge", "fog", "cloud", ...).
    pub name: String,
    /// This stage's detection model.
    pub model: SimulatedModel,
    /// The link *to* this stage from the previous one (`None` for s₀,
    /// which is where frames arrive).
    pub link_from_previous: Option<Link>,
    /// Thresholds deciding whether a frame continues to the *next* stage.
    /// Ignored for the last stage.
    pub forward_thresholds: ThresholdPair,
}

/// Per-stage outcome statistics.
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name.
    pub name: String,
    /// Fraction of all frames that reached this stage.
    pub reach_rate: f64,
    /// Fraction of all frames whose labels were *settled* here (not
    /// forwarded further).
    pub settle_rate: f64,
    /// Mean cumulative latency (ms) for frames settled at this stage.
    pub settle_latency_ms: f64,
}

/// The outcome of running a chain over a video.
#[derive(Clone, Debug)]
pub struct ChainMetrics {
    /// Per-stage statistics, in stage order.
    pub stages: Vec<StageStats>,
    /// F-score of the settled labels against the deepest model's labels.
    pub f_score: f64,
    /// Mean final latency over all frames, ms.
    pub final_latency_ms: f64,
    /// Mean stage-0 latency (the real-time response), ms.
    pub initial_latency_ms: f64,
}

/// Run an m-stage chain over a video. The *last* stage's labels are the
/// accuracy reference, mirroring the paper's ground-truth convention.
///
/// Panics unless the chain has at least two stages.
pub fn run_stage_chain(video: &Video, stages: &[Stage], seed: u64) -> ChainMetrics {
    assert!(
        stages.len() >= 2,
        "a chain needs at least two stages (§3.5)"
    );
    let query: LabelClass = video.query_class().clone();
    let mut link_rng = DetRng::new(seed).fork_named("chain-links");

    let n = video.len() as f64;
    let mut reach_counts = vec![0u64; stages.len()];
    let mut settle_counts = vec![0u64; stages.len()];
    let mut settle_latency: Vec<OnlineStats> = vec![OnlineStats::new(); stages.len()];
    let mut final_latency = OnlineStats::new();
    let mut initial_latency = OnlineStats::new();
    let mut pr = PrecisionRecall::default();

    for frame in video.frames() {
        // Reference labels: the deepest model, always computed for scoring.
        let reference: Vec<Detection> = stages
            .last()
            .expect("non-empty chain")
            .model
            .detect(frame)
            .into_iter()
            .filter(|d| d.is_class(&query))
            .collect();

        let mut cumulative_ms = 0.0;
        let mut settled: Option<(usize, Vec<Detection>)> = None;
        for (i, stage) in stages.iter().enumerate() {
            if let Some(link) = &stage.link_from_previous {
                cumulative_ms += link
                    .transfer_latency(frame.bytes, &mut link_rng)
                    .as_millis_f64();
            }
            reach_counts[i] += 1;
            let labels: Vec<Detection> = stage
                .model
                .detect(frame)
                .into_iter()
                .filter(|d| d.is_class(&query))
                .collect();
            cumulative_ms += stage.model.inference_latency(frame).as_millis_f64();
            if i == 0 {
                initial_latency.push(cumulative_ms);
            }
            let is_last = i + 1 == stages.len();
            let forward = !is_last
                && labels.iter().any(|d| {
                    stage.forward_thresholds.lower <= d.confidence
                        && d.confidence <= stage.forward_thresholds.upper
                });
            if !forward {
                // Settled here: keep-interval labels stand (for the last
                // stage, everything stands — it *is* the reference model).
                let kept: Vec<Detection> = if is_last {
                    labels
                } else {
                    labels
                        .into_iter()
                        .filter(|d| d.confidence > stage.forward_thresholds.upper)
                        .collect()
                };
                settled = Some((i, kept));
                break;
            }
        }
        let (settle_stage, final_labels) = settled.expect("last stage always settles");
        settle_counts[settle_stage] += 1;
        settle_latency[settle_stage].push(cumulative_ms);
        final_latency.push(cumulative_ms);
        pr.add(score_against(&final_labels, &reference, &query, 0.10));
    }

    ChainMetrics {
        stages: stages
            .iter()
            .enumerate()
            .map(|(i, s)| StageStats {
                name: s.name.clone(),
                reach_rate: reach_counts[i] as f64 / n,
                settle_rate: settle_counts[i] as f64 / n,
                settle_latency_ms: settle_latency[i].mean(),
            })
            .collect(),
        f_score: pr.f_score(),
        final_latency_ms: final_latency.mean(),
        initial_latency_ms: initial_latency.mean(),
    }
}

/// The paper's two-tier chain: Tiny-YOLOv3 edge → YOLOv3-416 cloud.
pub fn edge_cloud_chain(seed: u64, thresholds: ThresholdPair) -> Vec<Stage> {
    use croesus_detect::ModelProfile;
    use croesus_sim::Normal;
    vec![
        Stage {
            name: "edge".into(),
            model: SimulatedModel::new(ModelProfile::tiny_yolov3(), seed ^ 0xE),
            link_from_previous: None,
            forward_thresholds: thresholds,
        },
        Stage {
            name: "cloud".into(),
            model: SimulatedModel::new(ModelProfile::yolov3_416(), seed ^ 0xC),
            link_from_previous: Some(Link::new("edge→cloud", Normal::new(62.0, 4.0), 50e6, 0.09)),
            forward_thresholds: thresholds, // unused on the last stage
        },
    ]
}

/// A three-tier chain: edge → fog (YOLOv3-320 nearby) → cloud (YOLOv3-608).
/// The fog tier is ~20 ms away; the cloud keeps the cross-country hop.
pub fn edge_fog_cloud_chain(
    seed: u64,
    edge_thresholds: ThresholdPair,
    fog_thresholds: ThresholdPair,
) -> Vec<Stage> {
    use croesus_detect::ModelProfile;
    use croesus_sim::Normal;
    vec![
        Stage {
            name: "edge".into(),
            model: SimulatedModel::new(ModelProfile::tiny_yolov3(), seed ^ 0xE),
            link_from_previous: None,
            forward_thresholds: edge_thresholds,
        },
        Stage {
            name: "fog".into(),
            model: SimulatedModel::new(ModelProfile::yolov3_320(), seed ^ 0xF),
            link_from_previous: Some(Link::new("edge→fog", Normal::new(18.0, 2.0), 100e6, 0.02)),
            forward_thresholds: fog_thresholds,
        },
        Stage {
            name: "cloud".into(),
            model: SimulatedModel::new(ModelProfile::yolov3_608(), seed ^ 0xC),
            link_from_previous: Some(Link::new("fog→cloud", Normal::new(62.0, 4.0), 50e6, 0.09)),
            forward_thresholds: fog_thresholds, // unused on the last stage
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::VideoPreset;

    fn video() -> Video {
        VideoPreset::StreetTraffic.generate(100, 42)
    }

    #[test]
    fn two_stage_chain_runs_and_settles_everything() {
        let v = video();
        let chain = edge_cloud_chain(42, ThresholdPair::new(0.4, 0.6));
        let m = run_stage_chain(&v, &chain, 42);
        let total: f64 = m.stages.iter().map(|s| s.settle_rate).sum();
        assert!((total - 1.0).abs() < 1e-9, "every frame settles somewhere");
        assert_eq!(m.stages[0].reach_rate, 1.0);
        assert!(m.f_score > 0.5);
    }

    #[test]
    fn wider_validate_band_forwards_more() {
        let v = video();
        let narrow = run_stage_chain(&v, &edge_cloud_chain(42, ThresholdPair::new(0.5, 0.5)), 42);
        let wide = run_stage_chain(&v, &edge_cloud_chain(42, ThresholdPair::new(0.2, 0.8)), 42);
        assert!(wide.stages[1].reach_rate > narrow.stages[1].reach_rate);
        assert!(wide.f_score >= narrow.f_score);
    }

    #[test]
    fn three_stage_chain_reaches_monotonically_fewer_frames() {
        let v = video();
        let chain = edge_fog_cloud_chain(
            42,
            ThresholdPair::new(0.3, 0.7),
            ThresholdPair::new(0.5, 0.8),
        );
        let m = run_stage_chain(&v, &chain, 42);
        assert_eq!(m.stages.len(), 3);
        assert!(m.stages[0].reach_rate >= m.stages[1].reach_rate);
        assert!(m.stages[1].reach_rate >= m.stages[2].reach_rate);
        let total: f64 = m.stages.iter().map(|s| s.settle_rate).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_settling_costs_more_latency() {
        let v = video();
        let chain = edge_cloud_chain(42, ThresholdPair::new(0.3, 0.7));
        let m = run_stage_chain(&v, &chain, 42);
        if m.stages[1].settle_rate > 0.0 && m.stages[0].settle_rate > 0.0 {
            assert!(m.stages[1].settle_latency_ms > m.stages[0].settle_latency_ms + 500.0);
        }
        assert!(m.initial_latency_ms < 250.0, "stage-0 stays real-time");
    }

    #[test]
    fn chain_is_deterministic() {
        let v = video();
        let a = run_stage_chain(&v, &edge_cloud_chain(42, ThresholdPair::new(0.4, 0.6)), 42);
        let b = run_stage_chain(&v, &edge_cloud_chain(42, ThresholdPair::new(0.4, 0.6)), 42);
        assert_eq!(a.f_score, b.f_score);
        assert_eq!(a.final_latency_ms, b.final_latency_ms);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_stage_chain_panics() {
        let v = video();
        let mut chain = edge_cloud_chain(42, ThresholdPair::new(0.4, 0.6));
        chain.truncate(1);
        run_stage_chain(&v, &chain, 42);
    }
}
