//! The evaluation workload (§5.1).
//!
//! "Each detection acquired for each frame triggers a transaction that has
//! 6 operations, half of these mutate the state of the database by
//! inserting data items, and the other half read from previously added
//! items. This mimics a write-heavy workload of YCSB (Workload A)."
//!
//! The final section finalizes or corrects: when the trigger turns out
//! erroneous, the inserted items are removed; when the label was merely
//! misnamed, the items are rewritten under the corrected label.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use croesus_detect::Detection;
use croesus_sim::DetRng;
use croesus_store::Key;
use croesus_txn::{RwSet, SectionOutput};

use crate::bank::{TxnInstance, TxnTemplate};
use crate::matching::LabelVerdict;

/// The YCSB-A-style detection-triggered workload template.
pub struct YcsbWorkload {
    /// Monotonic item counter shared by all instances — "previously added
    /// items" are those with indices below the counter.
    next_item: Arc<AtomicU64>,
    /// Operations per transaction (6 in the paper: 3 inserts + 3 reads).
    ops: usize,
}

impl YcsbWorkload {
    /// The paper's configuration: 6 operations.
    pub fn new() -> Self {
        YcsbWorkload::with_ops(6)
    }

    /// Custom operation count (must be even and non-zero: half inserts,
    /// half reads).
    pub fn with_ops(ops: usize) -> Self {
        assert!(
            ops >= 2 && ops.is_multiple_of(2),
            "ops must be even and >= 2"
        );
        YcsbWorkload {
            next_item: Arc::new(AtomicU64::new(0)),
            ops,
        }
    }

    /// Items inserted so far.
    pub fn items_inserted(&self) -> u64 {
        self.next_item.load(Ordering::Relaxed)
    }
}

impl Default for YcsbWorkload {
    fn default() -> Self {
        YcsbWorkload::new()
    }
}

impl TxnTemplate for YcsbWorkload {
    fn name(&self) -> &str {
        "ycsb-a"
    }

    fn instantiate(&self, trigger: &Detection, rng: &mut DetRng) -> TxnInstance {
        let half = self.ops / 2;
        // Reserve fresh item ids for the inserts.
        let first = self.next_item.fetch_add(half as u64, Ordering::Relaxed);
        let insert_keys: Vec<Key> = (first..first + half as u64)
            .map(|i| Key::indexed("item", i))
            .collect();
        // Read keys among previously added items (self-reads if none yet).
        let read_keys: Vec<Key> = (0..half)
            .map(|_| {
                if first == 0 {
                    insert_keys[rng.index(half)].clone()
                } else {
                    Key::indexed("item", rng.int_range(0, first))
                }
            })
            .collect();

        let mut initial_rw = RwSet::new();
        for k in &insert_keys {
            initial_rw.writes.push(k.clone());
        }
        for k in &read_keys {
            initial_rw.reads.push(k.clone());
        }
        // The final section may rewrite or remove exactly what the initial
        // section inserted.
        let mut final_rw = RwSet::new();
        for k in &insert_keys {
            final_rw.writes.push(k.clone());
        }

        let label = trigger.class.name().to_string();
        let insert_for_initial = insert_keys.clone();
        let read_for_initial = read_keys;
        let insert_for_final = insert_keys;

        TxnInstance {
            name: format!("ycsb-a[{label}]"),
            initial_rw,
            final_rw,
            initial: Box::new(move |ctx| {
                let mut out = SectionOutput::new();
                for k in &insert_for_initial {
                    ctx.write(k.clone(), format!("seen:{label}"))?;
                }
                for k in &read_for_initial {
                    if let Some(v) = ctx.read(k.clone())? {
                        // Responses leave the store's sharing domain, so
                        // this clone is the protocol boundary, not hot path.
                        out.response.push((*v).clone());
                    }
                }
                Ok(out)
            }),
            final_section: Box::new(move |ctx, input| {
                match &input.verdict {
                    // Trigger confirmed: terminate, keeping the inserts.
                    LabelVerdict::Correct => {}
                    // Object existed under another name: rewrite the items
                    // under the corrected label (retain as much state as
                    // possible — the merge side of MS-IA).
                    LabelVerdict::Corrected(correct) => {
                        for k in &insert_for_final {
                            ctx.write(k.clone(), format!("seen:{}", correct.class))?;
                        }
                    }
                    // Nothing was there: remove the erroneous inserts and
                    // apologize.
                    LabelVerdict::Erroneous => {
                        for k in &insert_for_final {
                            ctx.delete(k.clone())?;
                        }
                    }
                }
                Ok(SectionOutput::new())
            }),
        }
    }
}

/// A simple update-only workload over a hot-spot key range, used by the
/// Figure 6(b) contention experiment: "transactions are executed in batches
/// of 50 transactions per batch where each transaction has 5 update
/// operations. ... The x-axis (key range) is the key range of the hot spot."
pub struct HotspotWorkload {
    /// Size of the hot key range.
    pub key_range: u64,
    /// Updates per transaction (5 in the paper).
    pub updates: usize,
}

impl HotspotWorkload {
    /// The paper's configuration: 5 updates per transaction.
    pub fn new(key_range: u64) -> Self {
        assert!(key_range > 0, "key range must be non-empty");
        HotspotWorkload {
            key_range,
            updates: 5,
        }
    }

    /// Draw one transaction's write set.
    pub fn rwset(&self, rng: &mut DetRng) -> RwSet {
        let mut rw = RwSet::new();
        for _ in 0..self.updates {
            let k = Key::indexed("hot", rng.int_range(0, self.key_range));
            if !rw.writes.contains(&k) {
                rw.writes.push(k);
            }
        }
        rw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::TxnInstance;
    use crate::matching::FinalInput;
    use croesus_store::{KvStore, LockManager, LockPolicy, TxnId};
    use croesus_txn::{ExecutorCore, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind};
    use croesus_video::BoundingBox;

    fn det(class: &str) -> Detection {
        Detection::new(class.into(), 0.9, BoundingBox::new(0.4, 0.4, 0.2, 0.2))
    }

    fn executor() -> Box<dyn MultiStageProtocol> {
        ProtocolKind::MsIa.build(ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::Block)),
        ))
    }

    /// Run a bank instance's two sections through the protocol API.
    fn run_instance(ex: &dyn MultiStageProtocol, inst: TxnInstance, input: &FinalInput) {
        let h = ex.begin(TxnId(1), &[inst.initial_rw.clone(), inst.final_rw.clone()]);
        let (_, h) = ex
            .stage(h, &inst.initial_rw, |ctx| (inst.initial)(ctx.section_mut()))
            .unwrap();
        ex.stage(h.unwrap(), &inst.final_rw, |ctx| {
            (inst.final_section)(ctx.section_mut(), input)
        })
        .unwrap();
    }

    #[test]
    fn instance_has_six_ops_split_three_three() {
        let w = YcsbWorkload::new();
        let mut rng = DetRng::new(1);
        let inst = w.instantiate(&det("car"), &mut rng);
        assert_eq!(inst.initial_rw.writes.len(), 3);
        assert_eq!(inst.initial_rw.reads.len(), 3);
        assert_eq!(inst.final_rw.writes.len(), 3);
        assert_eq!(w.items_inserted(), 3);
    }

    #[test]
    fn item_counter_advances_across_instances() {
        let w = YcsbWorkload::new();
        let mut rng = DetRng::new(1);
        let a = w.instantiate(&det("car"), &mut rng);
        let b = w.instantiate(&det("car"), &mut rng);
        assert!(a
            .initial_rw
            .writes
            .iter()
            .all(|k| !b.initial_rw.writes.contains(k)));
        assert_eq!(w.items_inserted(), 6);
    }

    #[test]
    fn initial_inserts_then_final_keeps_on_correct() {
        let w = YcsbWorkload::new();
        let mut rng = DetRng::new(1);
        let inst = w.instantiate(&det("car"), &mut rng);
        let ex = executor();
        let keys = inst.initial_rw.writes.clone();
        let final_rw = inst.final_rw.clone();
        let final_section = inst.final_section;
        let h = ex.begin(TxnId(1), &[inst.initial_rw.clone(), final_rw.clone()]);
        let (_, pending) = ex
            .stage(h, &inst.initial_rw, |ctx| (inst.initial)(ctx.section_mut()))
            .unwrap();
        for k in &keys {
            assert!(ex.store().contains(k));
        }
        let input = FinalInput::correct(det("car"));
        ex.stage(pending.unwrap(), &final_rw, |ctx| {
            (final_section)(ctx.section_mut(), &input)
        })
        .unwrap();
        for k in &keys {
            assert_eq!(
                ex.store().get(k).unwrap().as_str().unwrap(),
                "seen:car",
                "correct trigger keeps inserts"
            );
        }
    }

    #[test]
    fn final_rewrites_on_corrected_label() {
        let w = YcsbWorkload::new();
        let mut rng = DetRng::new(1);
        let inst = w.instantiate(&det("bus"), &mut rng);
        let ex = executor();
        let keys = inst.initial_rw.writes.clone();
        let input = FinalInput {
            edge_label: Some(det("bus")),
            verdict: LabelVerdict::Corrected(det("car")),
        };
        run_instance(&*ex, inst, &input);
        for k in &keys {
            assert_eq!(ex.store().get(k).unwrap().as_str().unwrap(), "seen:car");
        }
    }

    #[test]
    fn final_deletes_on_erroneous_label() {
        let w = YcsbWorkload::new();
        let mut rng = DetRng::new(1);
        let inst = w.instantiate(&det("car"), &mut rng);
        let ex = executor();
        let keys = inst.initial_rw.writes.clone();
        let input = FinalInput {
            edge_label: Some(det("car")),
            verdict: LabelVerdict::Erroneous,
        };
        run_instance(&*ex, inst, &input);
        for k in &keys {
            assert!(!ex.store().contains(k), "erroneous inserts removed");
        }
    }

    #[test]
    fn reads_come_from_previously_added_items() {
        let w = YcsbWorkload::new();
        let mut rng = DetRng::new(1);
        let _first = w.instantiate(&det("car"), &mut rng);
        let later = w.instantiate(&det("car"), &mut rng);
        for k in &later.initial_rw.reads {
            let idx: u64 = k.as_str().strip_prefix("item/").unwrap().parse().unwrap();
            assert!(idx < 3, "reads must target previously added items");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_ops_panics() {
        YcsbWorkload::with_ops(5);
    }

    #[test]
    fn hotspot_rwset_stays_in_range() {
        let h = HotspotWorkload::new(10);
        let mut rng = DetRng::new(2);
        for _ in 0..100 {
            let rw = h.rwset(&mut rng);
            assert!(!rw.writes.is_empty() && rw.writes.len() <= 5);
            for k in &rw.writes {
                let idx: u64 = k.as_str().strip_prefix("hot/").unwrap().parse().unwrap();
                assert!(idx < 10);
            }
        }
    }

    #[test]
    fn small_hotspot_produces_conflicts_large_does_not() {
        let mut rng = DetRng::new(3);
        let small = HotspotWorkload::new(10);
        let sets: Vec<RwSet> = (0..50).map(|_| small.rwset(&mut rng)).collect();
        let conflicts = sets
            .iter()
            .enumerate()
            .flat_map(|(i, a)| sets[i + 1..].iter().map(move |b| a.conflicts_with(b)))
            .filter(|&c| c)
            .count();
        assert!(
            conflicts > 100,
            "tiny hotspot must conflict heavily: {conflicts}"
        );
        let large = HotspotWorkload::new(1_000_000);
        let sets: Vec<RwSet> = (0..50).map(|_| large.rwset(&mut rng)).collect();
        let conflicts = sets
            .iter()
            .enumerate()
            .flat_map(|(i, a)| sets[i + 1..].iter().map(move |b| a.conflicts_with(b)))
            .filter(|&c| c)
            .count();
        assert!(conflicts < 5, "huge hotspot rarely conflicts: {conflicts}");
    }
}
