//! Storage substrate.
//!
//! The Croesus edge node "hosts the main copy of its partition's data" and
//! "maintains a data store and processes transactions" (§3.1, §5.1). This
//! crate provides that data store and the locking machinery the multi-stage
//! concurrency-control protocols (in `croesus-txn`) are built on:
//!
//! * [`value`] — keys and typed values.
//! * [`kv`] — a sharded, versioned, thread-safe key-value store.
//! * [`lock`] — a shared/exclusive lock manager with pluggable conflict
//!   policies (block, no-wait, wait-die) and deadlock-free waiting.
//! * [`undo`] — per-transaction undo logs, the mechanism behind MS-IA's
//!   apologies and retractions.
//! * [`partition`] — named partitions (store + lock manager) for the
//!   multi-partition / two-phase-commit extension (§4.5).
//!
//! # The hashing contract
//!
//! [`Key`] computes the **FNV-1a hash of its text exactly once, at
//! construction**, and every consumer reuses it:
//!
//! * `HashMap` probes go through [`value::KeyHashBuilder`], a pass-through
//!   hasher that forwards the cached hash (finalized with a splitmix64
//!   avalanche) instead of SipHashing the key text;
//! * [`KvStore`] and [`LockManager`] pick shards from the *upper* 32 bits
//!   of the mixed hash, keeping shard residues decorrelated from map
//!   bucket indices;
//! * [`PartitionMap::partition_of`] routes on the **raw** FNV-1a value —
//!   byte-identical to the historical per-call FNV scan, and therefore
//!   **stable across runs, processes and versions**. Routing stability is
//!   pinned by golden-value tests; do not change [`value::fnv1a`] without
//!   a data-migration story.
//!
//! The net effect: after a key is constructed, no store, lock-manager or
//! routing operation hashes a single byte of key text.
//!
//! # The ownership contract
//!
//! Stored values live behind `Arc<Value>`. Reads ([`KvStore::get`],
//! [`KvStore::get_versioned`], [`KvStore::snapshot`], undo pre-images)
//! return refcount bumps that *alias the stored allocation*:
//!
//! * `Value`s are immutable once stored — there is no `&mut` path to a
//!   stored value, so aliasing is safe by construction;
//! * a reader's `Arc<Value>` stays valid (and unchanged) even if the key
//!   is overwritten or deleted afterwards — it simply keeps the old
//!   version alive, snapshot-style;
//! * code that hands values across an ownership boundary (e.g. client
//!   responses in `SectionOutput`) clones the inner `Value` explicitly at
//!   that boundary.
//!
//! # Lock batching
//!
//! [`LockManager::acquire_all`] / [`LockManager::release_all`] group lock
//! pairs by shard and take each shard mutex once per *transaction* rather
//! than once per key. Keys are granted incrementally along a global
//! `(shard index, key)` order — the total order is what makes concurrent
//! batched acquisition deadlock-free under [`LockPolicy::Block`] — and a
//! prior-mode journal rolls failed acquisitions back to the exact
//! pre-call state (pre-held locks and upgrade modes included); see the
//! [`lock`] module docs for the full argument.

pub mod kv;
pub mod lock;
pub mod partition;
#[cfg(feature = "mcheck")]
pub mod sched;
#[cfg(not(feature = "mcheck"))]
pub(crate) mod sched {
    //! No-op stand-ins for the model-checker hooks (`mcheck` feature off),
    //! so call sites stay unconditional and compile to nothing.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }
    #[inline(always)]
    pub fn block_point(_label: &'static str) {}
    #[inline(always)]
    pub fn progress(_label: &'static str) {}
}
pub mod undo;
pub mod value;

pub use kv::{KvStore, Versioned};
pub use lock::{LockError, LockManager, LockMode, LockPolicy, TxnId};
pub use partition::{Partition, PartitionId, PartitionMap};
pub use undo::{UndoLog, UndoRecord};
pub use value::{Key, Value};
