//! Storage substrate.
//!
//! The Croesus edge node "hosts the main copy of its partition's data" and
//! "maintains a data store and processes transactions" (§3.1, §5.1). This
//! crate provides that data store and the locking machinery the multi-stage
//! concurrency-control protocols (in `croesus-txn`) are built on:
//!
//! * [`value`] — keys and typed values.
//! * [`kv`] — a sharded, versioned, thread-safe key-value store.
//! * [`lock`] — a shared/exclusive lock manager with pluggable conflict
//!   policies (block, no-wait, wait-die) and deadlock-free waiting.
//! * [`undo`] — per-transaction undo logs, the mechanism behind MS-IA's
//!   apologies and retractions.
//! * [`partition`] — named partitions (store + lock manager) for the
//!   multi-partition / two-phase-commit extension (§4.5).

pub mod kv;
pub mod lock;
pub mod partition;
pub mod undo;
pub mod value;

pub use kv::{KvStore, Versioned};
pub use lock::{LockError, LockManager, LockMode, LockPolicy, TxnId};
pub use partition::{Partition, PartitionId, PartitionMap};
pub use undo::UndoLog;
pub use value::{Key, Value};
