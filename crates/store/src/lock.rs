//! Shared/exclusive lock manager with pluggable conflict policies.
//!
//! The multi-stage protocols of §4 are lock-based: Two-Stage 2PL (MS-SR)
//! holds initial-section locks across the edge→cloud round trip, MS-IA
//! releases them at initial commit. This manager provides the primitive
//! they share: per-key S/X locks with
//!
//! * **Block** — wait indefinitely (safe only with externally-ordered
//!   acquisition),
//! * **NoWait** — fail immediately on conflict, and
//! * **WaitDie** — the classic deadlock-avoidance scheme: an *older*
//!   transaction (smaller [`TxnId`]) waits for a younger holder, a
//!   *younger* requester dies ([`LockError::Die`]) and must retry with the
//!   same id (keeping its priority, which guarantees progress).
//!
//! Waiting uses per-shard condvars; all policies additionally accept an
//! optional timeout.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::value::Key;

/// Transaction identifier. Doubles as the transaction's *age* for wait-die:
/// smaller ids are older and win conflicts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared holders.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// What to do when a requested lock conflicts with current holders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockPolicy {
    /// Wait until granted (caller must prevent deadlock, e.g. by ordered
    /// acquisition).
    Block,
    /// Fail immediately with [`LockError::WouldBlock`].
    NoWait,
    /// Wait-die deadlock avoidance: older requesters wait, younger die.
    WaitDie,
}

/// Why an acquisition failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockError {
    /// NoWait policy and the lock was held incompatibly.
    WouldBlock,
    /// Wait-die policy and the requester is younger than a holder.
    Die,
    /// The optional timeout elapsed while waiting.
    Timeout,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::WouldBlock => write!(f, "lock is held (no-wait)"),
            LockError::Die => write!(f, "wait-die: younger requester must abort"),
            LockError::Timeout => write!(f, "lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Default)]
struct Shard {
    table: Mutex<HashMap<Key, BTreeMap<TxnId, LockMode>>>,
    released: Condvar,
}

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    policy: LockPolicy,
}

impl LockManager {
    /// Default shard count.
    pub const DEFAULT_SHARDS: usize = 64;

    /// Create a manager with the given policy and default sharding.
    pub fn new(policy: LockPolicy) -> Self {
        LockManager::with_shards(policy, Self::DEFAULT_SHARDS)
    }

    /// Create a manager with an explicit shard count. Panics if zero.
    pub fn with_shards(policy: LockPolicy, shards: usize) -> Self {
        assert!(shards > 0, "lock manager needs at least one shard");
        LockManager {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            policy,
        }
    }

    /// The conflict policy.
    pub fn policy(&self) -> LockPolicy {
        self.policy
    }

    fn shard(&self, key: &Key) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Whether `txn` can be granted `mode` given current `owners`.
    fn grantable(owners: &BTreeMap<TxnId, LockMode>, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => owners
                .iter()
                .all(|(&o, &m)| o == txn || m == LockMode::Shared),
            LockMode::Exclusive => owners.keys().all(|&o| o == txn),
        }
    }

    /// Acquire `mode` on `key` for `txn`, waiting per the policy, with an
    /// optional wall-clock timeout.
    ///
    /// Re-entrant: a transaction already holding the key in a covering mode
    /// returns immediately; holding `Shared` and requesting `Exclusive`
    /// upgrades when the transaction is the sole owner.
    pub fn acquire(
        &self,
        txn: TxnId,
        key: &Key,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        let shard = self.shard(key);
        let mut table = shard.table.lock();
        loop {
            let owners = table.entry(key.clone()).or_default();
            if Self::grantable(owners, txn, mode) {
                let slot = owners.entry(txn).or_insert(mode);
                // Upgrade persists; downgrade does not overwrite.
                if mode == LockMode::Exclusive {
                    *slot = LockMode::Exclusive;
                }
                return Ok(());
            }
            match self.policy {
                LockPolicy::NoWait => {
                    Self::cleanup_if_empty(&mut table, key);
                    return Err(LockError::WouldBlock);
                }
                LockPolicy::WaitDie => {
                    let oldest_other = owners
                        .keys()
                        .filter(|&&o| o != txn)
                        .min()
                        .copied()
                        .expect("conflict implies another owner");
                    if txn > oldest_other {
                        // Younger than a holder: die.
                        Self::cleanup_if_empty(&mut table, key);
                        return Err(LockError::Die);
                    }
                }
                LockPolicy::Block => {}
            }
            // Wait for a release, then re-check.
            match timeout {
                Some(t) => {
                    if shard.released.wait_for(&mut table, t).timed_out() {
                        Self::cleanup_if_empty(&mut table, key);
                        return Err(LockError::Timeout);
                    }
                }
                None => shard.released.wait(&mut table),
            }
        }
    }

    /// Convenience: acquire with the policy's default (no timeout).
    pub fn lock(&self, txn: TxnId, key: &Key, mode: LockMode) -> Result<(), LockError> {
        self.acquire(txn, key, mode, None)
    }

    /// Acquire a set of keys in sorted order (deadlock-free under Block).
    /// On failure, any locks acquired by this call are rolled back.
    pub fn acquire_all(
        &self,
        txn: TxnId,
        keys: &[(Key, LockMode)],
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        let mut sorted: Vec<&(Key, LockMode)> = keys.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut acquired: Vec<&Key> = Vec::with_capacity(sorted.len());
        for (key, mode) in sorted {
            match self.acquire(txn, key, *mode, timeout) {
                Ok(()) => acquired.push(key),
                Err(e) => {
                    for k in acquired {
                        self.release(txn, k);
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn cleanup_if_empty(table: &mut HashMap<Key, BTreeMap<TxnId, LockMode>>, key: &Key) {
        if table.get(key).is_some_and(BTreeMap::is_empty) {
            table.remove(key);
        }
    }

    /// Release `txn`'s lock on `key` (no-op if not held).
    pub fn release(&self, txn: TxnId, key: &Key) {
        let shard = self.shard(key);
        let mut table = shard.table.lock();
        if let Some(owners) = table.get_mut(key) {
            owners.remove(&txn);
            if owners.is_empty() {
                table.remove(key);
            }
        }
        drop(table);
        shard.released.notify_all();
    }

    /// Release a set of keys.
    pub fn release_all<'a>(&self, txn: TxnId, keys: impl IntoIterator<Item = &'a Key>) {
        for key in keys {
            self.release(txn, key);
        }
    }

    /// The mode `txn` holds on `key`, if any.
    pub fn held_mode(&self, txn: TxnId, key: &Key) -> Option<LockMode> {
        self.shard(key).table.lock().get(key)?.get(&txn).copied()
    }

    /// Number of keys with at least one holder (diagnostics).
    pub fn locked_keys(&self) -> usize {
        self.shards.iter().map(|s| s.table.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new(LockPolicy::NoWait);
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Shared).is_ok());
        assert!(lm.lock(TxnId(2), &k("a"), LockMode::Shared).is_ok());
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Shared));
        assert_eq!(lm.held_mode(TxnId(2), &k("a")), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        assert_eq!(
            lm.lock(TxnId(2), &k("a"), LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn exclusive_conflicts_with_exclusive() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.lock(TxnId(2), &k("a"), LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
        assert_eq!(
            lm.lock(TxnId(2), &k("a"), LockMode::Shared),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn reentrant_acquisition() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).is_ok());
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Shared).is_ok());
        // X covers S: mode stays exclusive.
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_when_sole_owner() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).is_ok());
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(2), &k("a"), LockMode::Shared).unwrap();
        assert_eq!(
            lm.lock(TxnId(1), &k("a"), LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn release_frees_the_key() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        lm.release(TxnId(1), &k("a"));
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), None);
        assert!(lm.lock(TxnId(2), &k("a"), LockMode::Exclusive).is_ok());
        assert_eq!(lm.locked_keys(), 1);
    }

    #[test]
    fn release_unheld_is_noop() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.release(TxnId(1), &k("nope"));
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_younger_dies() {
        let lm = LockManager::new(LockPolicy::WaitDie);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        // TxnId(5) is younger than the holder TxnId(1): dies.
        assert_eq!(
            lm.lock(TxnId(5), &k("a"), LockMode::Exclusive),
            Err(LockError::Die)
        );
    }

    #[test]
    fn wait_die_older_waits_until_release() {
        let lm = Arc::new(LockManager::new(LockPolicy::WaitDie));
        lm.lock(TxnId(5), &k("a"), LockMode::Exclusive).unwrap();
        let got_it = Arc::new(AtomicBool::new(false));
        let waiter = {
            let lm = Arc::clone(&lm);
            let got_it = Arc::clone(&got_it);
            thread::spawn(move || {
                // TxnId(1) is older: waits instead of dying.
                lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
                got_it.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(50));
        assert!(!got_it.load(Ordering::SeqCst), "older txn should still wait");
        lm.release(TxnId(5), &k("a"));
        waiter.join().unwrap();
        assert!(got_it.load(Ordering::SeqCst));
    }

    #[test]
    fn blocking_waiter_wakes_on_release() {
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.lock(TxnId(2), &k("a"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        lm.release(TxnId(1), &k("a"));
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn timeout_fires() {
        let lm = LockManager::new(LockPolicy::Block);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        let r = lm.acquire(
            TxnId(2),
            &k("a"),
            LockMode::Exclusive,
            Some(Duration::from_millis(20)),
        );
        assert_eq!(r, Err(LockError::Timeout));
    }

    #[test]
    fn acquire_all_rolls_back_on_failure() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(9), &k("b"), LockMode::Exclusive).unwrap();
        let keys = vec![
            (k("a"), LockMode::Exclusive),
            (k("b"), LockMode::Exclusive),
            (k("c"), LockMode::Exclusive),
        ];
        assert!(lm.acquire_all(TxnId(10), &keys, None).is_err());
        // "a" must have been released again.
        assert_eq!(lm.held_mode(TxnId(10), &k("a")), None);
        assert!(lm.lock(TxnId(11), &k("a"), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn acquire_all_sorted_order_prevents_deadlock() {
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        let keys_ab = vec![(k("a"), LockMode::Exclusive), (k("b"), LockMode::Exclusive)];
        let keys_ba = vec![(k("b"), LockMode::Exclusive), (k("a"), LockMode::Exclusive)];
        let done = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let lm = Arc::clone(&lm);
                let keys = if i % 2 == 0 { keys_ab.clone() } else { keys_ba.clone() };
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    for _ in 0..50 {
                        lm.acquire_all(TxnId(i), &keys, None).unwrap();
                        let ks: Vec<Key> = keys.iter().map(|(k, _)| k.clone()).collect();
                        lm.release_all(TxnId(i), ks.iter());
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn exclusive_lock_provides_mutual_exclusion() {
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        let counter = Arc::new(AtomicUsize::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let lm = Arc::clone(&lm);
                let counter = Arc::clone(&counter);
                let in_cs = Arc::clone(&in_cs);
                thread::spawn(move || {
                    for _ in 0..200 {
                        lm.lock(TxnId(i), &k("hot"), LockMode::Exclusive).unwrap();
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        counter.fetch_add(1, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        lm.release(TxnId(i), &k("hot"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1600);
    }

    #[test]
    fn readers_and_writers_mix_safely_under_stress() {
        // 4 writers and 4 readers hammer one key under Block; writers get
        // exclusive access, readers may overlap each other but never a
        // writer.
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        let writers_in = Arc::new(AtomicUsize::new(0));
        let readers_in = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let lm = Arc::clone(&lm);
            let writers_in = Arc::clone(&writers_in);
            let readers_in = Arc::clone(&readers_in);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    lm.lock(TxnId(i), &k("mix"), LockMode::Exclusive).unwrap();
                    assert_eq!(writers_in.fetch_add(1, Ordering::SeqCst), 0);
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0);
                    writers_in.fetch_sub(1, Ordering::SeqCst);
                    lm.release(TxnId(i), &k("mix"));
                }
            }));
        }
        for i in 4..8u64 {
            let lm = Arc::clone(&lm);
            let writers_in = Arc::clone(&writers_in);
            let readers_in = Arc::clone(&readers_in);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    lm.lock(TxnId(i), &k("mix"), LockMode::Shared).unwrap();
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(writers_in.load(Ordering::SeqCst), 0);
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lm.release(TxnId(i), &k("mix"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_applies_to_shared_holders_too() {
        let lm = LockManager::new(LockPolicy::WaitDie);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(2), &k("a"), LockMode::Shared).unwrap();
        // A younger exclusive requester dies against the older readers.
        assert_eq!(
            lm.lock(TxnId(9), &k("a"), LockMode::Exclusive),
            Err(LockError::Die)
        );
        // Readers keep their locks.
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Shared));
    }

    #[test]
    fn timeout_leaves_no_stale_waiter_state() {
        let lm = LockManager::new(LockPolicy::Block);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        for _ in 0..5 {
            let _ = lm.acquire(
                TxnId(2),
                &k("a"),
                LockMode::Exclusive,
                Some(Duration::from_millis(5)),
            );
        }
        lm.release(TxnId(1), &k("a"));
        // Nothing lingers; a fresh acquisition succeeds instantly.
        assert!(lm.lock(TxnId(3), &k("a"), LockMode::Exclusive).is_ok());
        lm.release(TxnId(3), &k("a"));
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_cannot_deadlock_under_symmetric_contention() {
        // Two transactions repeatedly locking {a, b} in opposite orders under
        // WaitDie: progress is guaranteed because one always dies and retries
        // (keeping its id/priority).
        let lm = Arc::new(LockManager::new(LockPolicy::WaitDie));
        let threads: Vec<_> = (0..2)
            .map(|i| {
                let lm = Arc::clone(&lm);
                thread::spawn(move || {
                    let (first, second) = if i == 0 {
                        (k("a"), k("b"))
                    } else {
                        (k("b"), k("a"))
                    };
                    let me = TxnId(i);
                    let mut commits = 0;
                    while commits < 50 {
                        if lm.lock(me, &first, LockMode::Exclusive).is_err() {
                            continue;
                        }
                        match lm.lock(me, &second, LockMode::Exclusive) {
                            Ok(()) => {
                                commits += 1;
                                lm.release(me, &first);
                                lm.release(me, &second);
                            }
                            Err(_) => {
                                lm.release(me, &first);
                                std::thread::yield_now();
                            }
                        }
                    }
                    commits
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 50);
        }
    }
}
