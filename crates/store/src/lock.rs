//! Shared/exclusive lock manager with pluggable conflict policies.
//!
//! The multi-stage protocols of §4 are lock-based: Two-Stage 2PL (MS-SR)
//! holds initial-section locks across the edge→cloud round trip, MS-IA
//! releases them at initial commit. This manager provides the primitive
//! they share: per-key S/X locks with
//!
//! * **Block** — wait indefinitely (safe only with externally-ordered
//!   acquisition),
//! * **NoWait** — fail immediately on conflict, and
//! * **WaitDie** — the classic deadlock-avoidance scheme: an *older*
//!   transaction (smaller [`TxnId`]) waits for a younger holder, a
//!   *younger* requester dies ([`LockError::Die`]) and must retry with the
//!   same id (keeping its priority, which guarantees progress).
//!
//! Waiting uses per-shard condvars; all policies additionally accept an
//! optional timeout.
//!
//! # Batched acquisition
//!
//! [`acquire_all`](LockManager::acquire_all) groups a transaction's lock
//! pairs by shard and acquires each shard's batch under a *single mutex
//! hold per attempt*, walking a global `(shard index, key)` order. Grants
//! are incremental: each grantable key is taken and *held* immediately,
//! and the transaction waits only at the first conflicting key. The global
//! total order makes concurrent batched acquisition deadlock-free under
//! `Block` (the same ordered-resources argument as sorted per-key
//! acquisition), holding the granted prefix preserves wait-die's
//! priority-based progress for the oldest transaction, and a prior-mode
//! journal makes failed acquisitions side-effect-free — pre-held locks and
//! modes survive a failed batch untouched. Compared to per-key acquisition
//! this takes each shard mutex once per *transaction* instead of once per
//! *key*, and wakes waiters once per shard batch on release.
//! [`release_all`](LockManager::release_all) is batched the same way.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::value::{Key, KeyHashBuilder};

/// Transaction identifier. Doubles as the transaction's *age* for wait-die:
/// smaller ids are older and win conflicts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared holders.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// What to do when a requested lock conflicts with current holders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockPolicy {
    /// Wait until granted (caller must prevent deadlock, e.g. by ordered
    /// acquisition or by always using [`LockManager::acquire_all`]).
    Block,
    /// Fail immediately with [`LockError::WouldBlock`].
    NoWait,
    /// Wait-die deadlock avoidance: older requesters wait, younger die.
    WaitDie,
}

/// Why an acquisition failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockError {
    /// NoWait policy and the lock was held incompatibly.
    WouldBlock,
    /// Wait-die policy and the requester is younger than a holder.
    Die,
    /// The optional timeout elapsed while waiting.
    Timeout,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::WouldBlock => write!(f, "lock is held (no-wait)"),
            LockError::Die => write!(f, "wait-die: younger requester must abort"),
            LockError::Timeout => write!(f, "lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

type LockTable = HashMap<Key, BTreeMap<TxnId, LockMode>, KeyHashBuilder>;

#[derive(Default)]
struct Shard {
    table: Mutex<LockTable>,
    released: Condvar,
}

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    policy: LockPolicy,
}

impl LockManager {
    /// Default shard count.
    pub const DEFAULT_SHARDS: usize = 64;

    /// Create a manager with the given policy and default sharding.
    pub fn new(policy: LockPolicy) -> Self {
        LockManager::with_shards(policy, Self::DEFAULT_SHARDS)
    }

    /// Create a manager with an explicit shard count. Panics if zero.
    pub fn with_shards(policy: LockPolicy, shards: usize) -> Self {
        assert!(shards > 0, "lock manager needs at least one shard");
        LockManager {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            policy,
        }
    }

    /// The conflict policy.
    pub fn policy(&self) -> LockPolicy {
        self.policy
    }

    #[inline]
    fn shard_index(&self, key: &Key) -> usize {
        key.shard_index(self.shards.len())
    }

    /// Whether `txn` can be granted `mode` given current `owners`.
    fn grantable(owners: &BTreeMap<TxnId, LockMode>, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => owners
                .iter()
                .all(|(&o, &m)| o == txn || m == LockMode::Shared),
            LockMode::Exclusive => owners.keys().all(|&o| o == txn),
        }
    }

    /// Grant `(key, mode)` to `txn` in `table` (the key must be grantable).
    /// Returns the mode `txn` held *before* this grant (`None` = not held),
    /// so a failed multi-key acquisition can restore the exact prior state.
    fn grant(table: &mut LockTable, txn: TxnId, key: &Key, mode: LockMode) -> Option<LockMode> {
        let owners = table.entry(key.clone()).or_default();
        match owners.entry(txn) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let prior = *e.get();
                // Upgrade persists; downgrade does not overwrite.
                if mode == LockMode::Exclusive {
                    *e.get_mut() = LockMode::Exclusive;
                }
                Some(prior)
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(mode);
                None
            }
        }
    }

    /// Remove `txn` from `key`'s owner set in `table` (no-op if not held).
    fn ungrant(table: &mut LockTable, txn: TxnId, key: &Key) {
        if let Some(owners) = table.get_mut(key) {
            owners.remove(&txn);
            if owners.is_empty() {
                table.remove(key);
            }
        }
    }

    /// Undo one [`grant`](Self::grant): restore `txn`'s pre-grant state on
    /// `key` — drop the lock if it was not held before, or restore the
    /// prior mode (undoing an upgrade) if it was.
    fn restore_grant(table: &mut LockTable, txn: TxnId, key: &Key, prior: Option<LockMode>) {
        match prior {
            None => Self::ungrant(table, txn, key),
            Some(mode) => {
                table.entry(key.clone()).or_default().insert(txn, mode);
            }
        }
    }

    /// Acquire every `(key, mode)` pair in `batch` — all of which must live
    /// in shard `shard_idx`, in ascending key order — under one shard-mutex
    /// hold per attempt.
    ///
    /// Grants are **incremental in key order** for every policy: each
    /// grantable key is taken (and *held*) immediately and the transaction
    /// waits only at the first conflicting key. Because every multi-key
    /// acquisition walks the same global `(shard index, key)` order, the
    /// held prefix can never participate in a wait cycle under `Block`
    /// (classic total-order resource acquisition — same argument as the
    /// seed's sorted per-key protocol, one mutex hold per shard instead of
    /// per key). Under `WaitDie` holding the prefix also preserves the
    /// priority guarantee: younger contenders die against it instead of
    /// starving the batch.
    ///
    /// Every grant (with the prior mode it replaced) is appended to
    /// `journal`; on failure the *caller* restores the journal, so a failed
    /// acquisition leaves pre-held locks and modes exactly as they were.
    /// Single-key batches pass `None` — they fail only at the first key,
    /// with nothing granted.
    fn acquire_shard_batch<'a>(
        &self,
        txn: TxnId,
        shard_idx: usize,
        batch: &[(&'a Key, LockMode)],
        timeout: Option<Duration>,
        mut journal: Option<&mut Vec<(usize, &'a Key, Option<LockMode>)>>,
    ) -> Result<(), LockError> {
        debug_assert!(batch.len() == 1 || journal.is_some());
        let shard = &self.shards[shard_idx];
        let mut next = 0; // first batch entry not yet granted by this call
        let mut table = shard.table.lock();
        loop {
            while next < batch.len() {
                let (key, mode) = batch[next];
                let grantable = table
                    .get(key)
                    .is_none_or(|owners| Self::grantable(owners, txn, mode));
                if !grantable {
                    break;
                }
                let prior = Self::grant(&mut table, txn, key, mode);
                if let Some(j) = journal.as_deref_mut() {
                    j.push((shard_idx, key, prior));
                }
                next += 1;
            }
            if next == batch.len() {
                return Ok(());
            }
            // Conflict at batch[next]; the granted prefix stays held and the
            // journal records it — the caller rolls back on error.
            match self.policy {
                LockPolicy::NoWait => return Err(LockError::WouldBlock),
                LockPolicy::WaitDie => {
                    // Standard wait-die on the blocking key: die if any
                    // conflicting holder is *older* (smaller id); wait only
                    // when every conflicting holder is younger.
                    let (key, _) = batch[next];
                    let older_holder = table
                        .get(key)
                        .is_some_and(|owners| owners.keys().any(|&o| o != txn && o < txn));
                    if older_holder {
                        return Err(LockError::Die);
                    }
                }
                LockPolicy::Block => {}
            }
            // Wait for a release in this shard, then re-check from `next`.
            match timeout {
                Some(t) => {
                    if shard.released.wait_for(&mut table, t).timed_out() {
                        return Err(LockError::Timeout);
                    }
                }
                None => {
                    if crate::sched::active() {
                        // Model-checked run: hand the wait to the checker's
                        // scheduler instead of parking on the condvar. The
                        // shard mutex must be released across the switch.
                        drop(table);
                        crate::sched::block_point("store.lock.wait");
                        table = shard.table.lock();
                        continue;
                    }
                    shard.released.wait(&mut table);
                }
            }
        }
    }

    /// Restore every journaled grant (reverse order), returning each key to
    /// its exact pre-call state. One mutex hold + one wakeup per shard
    /// touched; journal entries are shard-contiguous by construction.
    fn rollback_journal(&self, txn: TxnId, journal: &[(usize, &Key, Option<LockMode>)]) {
        let mut end = journal.len();
        while end > 0 {
            let shard_idx = journal[end - 1].0;
            let start = journal[..end]
                .iter()
                .rposition(|e| e.0 != shard_idx)
                .map_or(0, |p| p + 1);
            let shard = &self.shards[shard_idx];
            let mut table = shard.table.lock();
            for &(_, key, prior) in journal[start..end].iter().rev() {
                Self::restore_grant(&mut table, txn, key, prior);
            }
            drop(table);
            shard.released.notify_all();
            crate::sched::progress("store.lock.rollback");
            end = start;
        }
    }

    /// Acquire `mode` on `key` for `txn`, waiting per the policy, with an
    /// optional wall-clock timeout (re-armed per wait).
    ///
    /// Re-entrant: a transaction already holding the key in a covering mode
    /// returns immediately; holding `Shared` and requesting `Exclusive`
    /// upgrades when the transaction is the sole owner.
    pub fn acquire(
        &self,
        txn: TxnId,
        key: &Key,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        self.acquire_shard_batch(txn, self.shard_index(key), &[(key, mode)], timeout, None)
    }

    /// Convenience: acquire with the policy's default (no timeout).
    pub fn lock(&self, txn: TxnId, key: &Key, mode: LockMode) -> Result<(), LockError> {
        self.acquire(txn, key, mode, None)
    }

    /// Acquire a set of keys, batched by shard: one shard-mutex hold per
    /// shard (not per key), shards in increasing index order, keys in
    /// ascending order within each shard — a global total order that makes
    /// concurrent batched acquisition deadlock-free under `Block` even for
    /// overlapping sets.
    ///
    /// On failure, every grant made by this call is rolled back to its
    /// exact prior state: locks the transaction already held before the
    /// call (re-entrant grants, upgrades) keep their pre-call modes.
    pub fn acquire_all(
        &self,
        txn: TxnId,
        keys: &[(Key, LockMode)],
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        match keys.len() {
            0 => return Ok(()),
            1 => return self.acquire(txn, &keys[0].0, keys[0].1, timeout),
            _ => {}
        }
        // Shard-major, then key order: the global acquisition order that
        // underpins deadlock freedom under Block.
        let mut sorted: Vec<(usize, &Key, LockMode)> = keys
            .iter()
            .map(|(k, m)| (self.shard_index(k), k, *m))
            .collect();
        sorted.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));

        let mut journal: Vec<(usize, &Key, Option<LockMode>)> = Vec::with_capacity(sorted.len());
        let mut batch: Vec<(&Key, LockMode)> = Vec::with_capacity(sorted.len());
        let mut start = 0;
        while start < sorted.len() {
            let shard_idx = sorted[start].0;
            let end = sorted[start..]
                .iter()
                .position(|e| e.0 != shard_idx)
                .map_or(sorted.len(), |p| start + p);
            batch.clear();
            batch.extend(sorted[start..end].iter().map(|&(_, k, m)| (k, m)));
            if let Err(e) =
                self.acquire_shard_batch(txn, shard_idx, &batch, timeout, Some(&mut journal))
            {
                self.rollback_journal(txn, &journal);
                return Err(e);
            }
            start = end;
        }
        Ok(())
    }

    /// Release `txn`'s lock on `key` (no-op if not held).
    pub fn release(&self, txn: TxnId, key: &Key) {
        let shard = &self.shards[self.shard_index(key)];
        let mut table = shard.table.lock();
        Self::ungrant(&mut table, txn, key);
        drop(table);
        shard.released.notify_all();
        crate::sched::progress("store.lock.release");
    }

    /// Release a set of keys, batched by shard: one mutex hold and one
    /// condvar wakeup per shard touched, instead of one per key.
    pub fn release_all<'a>(&self, txn: TxnId, keys: impl IntoIterator<Item = &'a Key>) {
        let mut items: Vec<(usize, &Key)> =
            keys.into_iter().map(|k| (self.shard_index(k), k)).collect();
        items.sort_unstable_by_key(|e| e.0);
        let mut start = 0;
        while start < items.len() {
            let shard_idx = items[start].0;
            let end = items[start..]
                .iter()
                .position(|e| e.0 != shard_idx)
                .map_or(items.len(), |p| start + p);
            let shard = &self.shards[shard_idx];
            let mut table = shard.table.lock();
            for &(_, key) in &items[start..end] {
                Self::ungrant(&mut table, txn, key);
            }
            drop(table);
            shard.released.notify_all();
            crate::sched::progress("store.lock.release");
            start = end;
        }
    }

    /// The mode `txn` holds on `key`, if any.
    pub fn held_mode(&self, txn: TxnId, key: &Key) -> Option<LockMode> {
        self.shards[self.shard_index(key)]
            .table
            .lock()
            .get(key)?
            .get(&txn)
            .copied()
    }

    /// Number of keys with at least one holder (diagnostics).
    pub fn locked_keys(&self) -> usize {
        self.shards.iter().map(|s| s.table.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new(LockPolicy::NoWait);
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Shared).is_ok());
        assert!(lm.lock(TxnId(2), &k("a"), LockMode::Shared).is_ok());
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Shared));
        assert_eq!(lm.held_mode(TxnId(2), &k("a")), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        assert_eq!(
            lm.lock(TxnId(2), &k("a"), LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn exclusive_conflicts_with_exclusive() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.lock(TxnId(2), &k("a"), LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
        assert_eq!(
            lm.lock(TxnId(2), &k("a"), LockMode::Shared),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn reentrant_acquisition() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).is_ok());
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Shared).is_ok());
        // X covers S: mode stays exclusive.
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_when_sole_owner() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        assert!(lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).is_ok());
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(2), &k("a"), LockMode::Shared).unwrap();
        assert_eq!(
            lm.lock(TxnId(1), &k("a"), LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn release_frees_the_key() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        lm.release(TxnId(1), &k("a"));
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), None);
        assert!(lm.lock(TxnId(2), &k("a"), LockMode::Exclusive).is_ok());
        assert_eq!(lm.locked_keys(), 1);
    }

    #[test]
    fn release_unheld_is_noop() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.release(TxnId(1), &k("nope"));
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_younger_dies() {
        let lm = LockManager::new(LockPolicy::WaitDie);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        // TxnId(5) is younger than the holder TxnId(1): dies.
        assert_eq!(
            lm.lock(TxnId(5), &k("a"), LockMode::Exclusive),
            Err(LockError::Die)
        );
    }

    #[test]
    fn wait_die_older_waits_until_release() {
        let lm = Arc::new(LockManager::new(LockPolicy::WaitDie));
        lm.lock(TxnId(5), &k("a"), LockMode::Exclusive).unwrap();
        let got_it = Arc::new(AtomicBool::new(false));
        let waiter = {
            let lm = Arc::clone(&lm);
            let got_it = Arc::clone(&got_it);
            thread::spawn(move || {
                // TxnId(1) is older: waits instead of dying.
                lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
                got_it.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(50));
        assert!(
            !got_it.load(Ordering::SeqCst),
            "older txn should still wait"
        );
        lm.release(TxnId(5), &k("a"));
        waiter.join().unwrap();
        assert!(got_it.load(Ordering::SeqCst));
    }

    #[test]
    fn blocking_waiter_wakes_on_release() {
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.lock(TxnId(2), &k("a"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        lm.release(TxnId(1), &k("a"));
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn timeout_fires() {
        let lm = LockManager::new(LockPolicy::Block);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        let r = lm.acquire(
            TxnId(2),
            &k("a"),
            LockMode::Exclusive,
            Some(Duration::from_millis(20)),
        );
        assert_eq!(r, Err(LockError::Timeout));
    }

    #[test]
    fn acquire_all_rolls_back_on_failure() {
        let lm = LockManager::new(LockPolicy::NoWait);
        lm.lock(TxnId(9), &k("b"), LockMode::Exclusive).unwrap();
        let keys = vec![
            (k("a"), LockMode::Exclusive),
            (k("b"), LockMode::Exclusive),
            (k("c"), LockMode::Exclusive),
        ];
        assert!(lm.acquire_all(TxnId(10), &keys, None).is_err());
        // "a" must have been released again.
        assert_eq!(lm.held_mode(TxnId(10), &k("a")), None);
        assert!(lm.lock(TxnId(11), &k("a"), LockMode::Exclusive).is_ok());
    }

    #[test]
    fn acquire_all_rolls_back_across_many_shards() {
        // Enough keys to span most shards, with the conflict parked on an
        // arbitrary one: every key from every other shard batch must be
        // released again.
        let lm = LockManager::new(LockPolicy::NoWait);
        let keys: Vec<(Key, LockMode)> = (0..200)
            .map(|i| (Key::indexed("r", i), LockMode::Exclusive))
            .collect();
        let victim = keys[137].0.clone();
        lm.lock(TxnId(1), &victim, LockMode::Exclusive).unwrap();
        assert!(lm.acquire_all(TxnId(2), &keys, None).is_err());
        assert_eq!(lm.locked_keys(), 1, "only the pre-held victim remains");
        lm.release(TxnId(1), &victim);
        assert!(lm.acquire_all(TxnId(2), &keys, None).is_ok());
        lm.release_all(TxnId(2), keys.iter().map(|(k, _)| k));
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn acquire_all_sorted_order_prevents_deadlock() {
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        let keys_ab = vec![(k("a"), LockMode::Exclusive), (k("b"), LockMode::Exclusive)];
        let keys_ba = vec![(k("b"), LockMode::Exclusive), (k("a"), LockMode::Exclusive)];
        let done = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let lm = Arc::clone(&lm);
                let keys = if i % 2 == 0 {
                    keys_ab.clone()
                } else {
                    keys_ba.clone()
                };
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    for _ in 0..50 {
                        lm.acquire_all(TxnId(i), &keys, None).unwrap();
                        let ks: Vec<Key> = keys.iter().map(|(k, _)| k.clone()).collect();
                        lm.release_all(TxnId(i), ks.iter());
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn failed_acquire_all_preserves_preheld_locks() {
        // Regression: rollback must distinguish locks granted by the failed
        // call from re-entrant grants of locks the transaction already
        // held. Sweep many key pairs so both shard orders are exercised.
        let lm = LockManager::new(LockPolicy::NoWait);
        for i in 0..100u64 {
            let a = Key::indexed("pre", i * 2);
            let b = Key::indexed("pre", i * 2 + 1);
            lm.lock(TxnId(1), &a, LockMode::Exclusive).unwrap();
            lm.lock(TxnId(2), &b, LockMode::Exclusive).unwrap();
            let pairs = vec![
                (a.clone(), LockMode::Exclusive),
                (b.clone(), LockMode::Exclusive),
            ];
            assert_eq!(
                lm.acquire_all(TxnId(1), &pairs, None),
                Err(LockError::WouldBlock)
            );
            assert_eq!(
                lm.held_mode(TxnId(1), &a),
                Some(LockMode::Exclusive),
                "pre-held lock on {a} lost by failed acquire_all"
            );
            lm.release(TxnId(1), &a);
            lm.release(TxnId(2), &b);
        }
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn failed_acquire_all_restores_upgrade_to_prior_mode() {
        // A Shared lock upgraded to Exclusive inside a failed batch must
        // come back as Shared — neither lost nor left Exclusive.
        let lm = LockManager::new(LockPolicy::NoWait);
        for i in 0..100u64 {
            let a = Key::indexed("up", i * 2);
            let b = Key::indexed("up", i * 2 + 1);
            lm.lock(TxnId(1), &a, LockMode::Shared).unwrap();
            lm.lock(TxnId(2), &b, LockMode::Exclusive).unwrap();
            let pairs = vec![
                (a.clone(), LockMode::Exclusive),
                (b.clone(), LockMode::Exclusive),
            ];
            assert_eq!(
                lm.acquire_all(TxnId(1), &pairs, None),
                Err(LockError::WouldBlock)
            );
            assert_eq!(
                lm.held_mode(TxnId(1), &a),
                Some(LockMode::Shared),
                "upgrade on {a} not restored to Shared by failed acquire_all"
            );
            // A concurrent reader is compatible again — the upgrade really
            // was undone in the table, not just in held_mode's view.
            assert!(lm.lock(TxnId(3), &a, LockMode::Shared).is_ok());
            lm.release(TxnId(1), &a);
            lm.release(TxnId(2), &b);
            lm.release(TxnId(3), &a);
        }
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_batch_holds_partial_grants_so_oldest_cannot_starve() {
        // Regression test for incremental in-shard grants: the oldest
        // transaction's batch takes grantable keys immediately and *holds*
        // them while waiting for the rest, so younger single-key cyclers
        // die against the held prefix instead of starving the batch.
        use std::sync::atomic::AtomicBool;
        let lm = Arc::new(LockManager::with_shards(LockPolicy::WaitDie, 1));
        let keys: Vec<(Key, LockMode)> = (0..4)
            .map(|i| (Key::indexed("s", i), LockMode::Exclusive))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let youngers: Vec<_> = (0..3u64)
            .map(|t| {
                let lm = Arc::clone(&lm);
                let stop = Arc::clone(&stop);
                let keys = keys.clone();
                thread::spawn(move || {
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let (k, _) = &keys[i % keys.len()];
                        i += 1;
                        if lm.lock(TxnId(100 + t), k, LockMode::Exclusive).is_ok() {
                            lm.release(TxnId(100 + t), k);
                        }
                    }
                })
            })
            .collect();
        // The oldest transaction must complete every round despite the
        // younger churn (watchdogless: wait-die guarantees it never dies,
        // and held partial grants guarantee forward progress).
        for _ in 0..50 {
            lm.acquire_all(TxnId(1), &keys, None).unwrap();
            lm.release_all(TxnId(1), keys.iter().map(|(k, _)| k));
        }
        stop.store(true, Ordering::Relaxed);
        for t in youngers {
            t.join().unwrap();
        }
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn exclusive_lock_provides_mutual_exclusion() {
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        let counter = Arc::new(AtomicUsize::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let lm = Arc::clone(&lm);
                let counter = Arc::clone(&counter);
                let in_cs = Arc::clone(&in_cs);
                thread::spawn(move || {
                    for _ in 0..200 {
                        lm.lock(TxnId(i), &k("hot"), LockMode::Exclusive).unwrap();
                        assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                        counter.fetch_add(1, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        lm.release(TxnId(i), &k("hot"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1600);
    }

    #[test]
    fn readers_and_writers_mix_safely_under_stress() {
        // 4 writers and 4 readers hammer one key under Block; writers get
        // exclusive access, readers may overlap each other but never a
        // writer.
        let lm = Arc::new(LockManager::new(LockPolicy::Block));
        let writers_in = Arc::new(AtomicUsize::new(0));
        let readers_in = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let lm = Arc::clone(&lm);
            let writers_in = Arc::clone(&writers_in);
            let readers_in = Arc::clone(&readers_in);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    lm.lock(TxnId(i), &k("mix"), LockMode::Exclusive).unwrap();
                    assert_eq!(writers_in.fetch_add(1, Ordering::SeqCst), 0);
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0);
                    writers_in.fetch_sub(1, Ordering::SeqCst);
                    lm.release(TxnId(i), &k("mix"));
                }
            }));
        }
        for i in 4..8u64 {
            let lm = Arc::clone(&lm);
            let writers_in = Arc::clone(&writers_in);
            let readers_in = Arc::clone(&readers_in);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    lm.lock(TxnId(i), &k("mix"), LockMode::Shared).unwrap();
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(writers_in.load(Ordering::SeqCst), 0);
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lm.release(TxnId(i), &k("mix"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_applies_to_shared_holders_too() {
        let lm = LockManager::new(LockPolicy::WaitDie);
        lm.lock(TxnId(1), &k("a"), LockMode::Shared).unwrap();
        lm.lock(TxnId(2), &k("a"), LockMode::Shared).unwrap();
        // A younger exclusive requester dies against the older readers.
        assert_eq!(
            lm.lock(TxnId(9), &k("a"), LockMode::Exclusive),
            Err(LockError::Die)
        );
        // Readers keep their locks.
        assert_eq!(lm.held_mode(TxnId(1), &k("a")), Some(LockMode::Shared));
    }

    #[test]
    fn timeout_leaves_no_stale_waiter_state() {
        let lm = LockManager::new(LockPolicy::Block);
        lm.lock(TxnId(1), &k("a"), LockMode::Exclusive).unwrap();
        for _ in 0..5 {
            let _ = lm.acquire(
                TxnId(2),
                &k("a"),
                LockMode::Exclusive,
                Some(Duration::from_millis(5)),
            );
        }
        lm.release(TxnId(1), &k("a"));
        // Nothing lingers; a fresh acquisition succeeds instantly.
        assert!(lm.lock(TxnId(3), &k("a"), LockMode::Exclusive).is_ok());
        lm.release(TxnId(3), &k("a"));
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn wait_die_cannot_deadlock_under_symmetric_contention() {
        // Two transactions repeatedly locking {a, b} in opposite orders under
        // WaitDie: progress is guaranteed because one always dies and retries
        // (keeping its id/priority).
        let lm = Arc::new(LockManager::new(LockPolicy::WaitDie));
        let threads: Vec<_> = (0..2)
            .map(|i| {
                let lm = Arc::clone(&lm);
                thread::spawn(move || {
                    let (first, second) = if i == 0 {
                        (k("a"), k("b"))
                    } else {
                        (k("b"), k("a"))
                    };
                    let me = TxnId(i);
                    let mut commits = 0;
                    while commits < 50 {
                        if lm.lock(me, &first, LockMode::Exclusive).is_err() {
                            continue;
                        }
                        match lm.lock(me, &second, LockMode::Exclusive) {
                            Ok(()) => {
                                commits += 1;
                                lm.release(me, &first);
                                lm.release(me, &second);
                            }
                            Err(_) => {
                                lm.release(me, &first);
                                std::thread::yield_now();
                            }
                        }
                    }
                    commits
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 50);
        }
    }
}
