//! Per-transaction undo logs.
//!
//! MS-IA (§4.4) commits initial sections optimistically and may later need
//! to "retract the effects" of a transaction when the final section
//! discovers the trigger or input was wrong ("apply-then-check"). An
//! [`UndoLog`] records, per write, the state a key had before the
//! transaction touched it, so the apology machinery can restore it.

use std::collections::HashSet;
use std::sync::Arc;

use crate::kv::KvStore;
use crate::value::{Key, KeyHashBuilder, Value};

/// One undo record: the key and its pre-image (None = key did not exist).
#[derive(Clone, Debug, PartialEq)]
pub struct UndoRecord {
    /// The written key.
    pub key: Key,
    /// The value before the first write by this transaction, if any.
    /// Shared with the store's history — never a deep clone.
    pub previous: Option<Arc<Value>>,
}

/// The undo log of one transaction section.
#[derive(Clone, Debug, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    /// Keys already recorded — membership reuses the hash cached inside
    /// [`Key`], so duplicate detection stays O(1) per write instead of a
    /// linear rescan (O(n²) across a large write set).
    seen: HashSet<Key, KeyHashBuilder>,
}

impl UndoLog {
    /// An empty log.
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Record a write's pre-image. Only the *first* write to a key within
    /// this log keeps its pre-image — later writes by the same transaction
    /// would otherwise undo to an intermediate state.
    pub fn record(&mut self, key: Key, previous: Option<Arc<Value>>) {
        if self.seen.insert(key.clone()) {
            self.records.push(UndoRecord { key, previous });
        }
    }

    /// Perform a write through the store, recording the pre-image.
    pub fn put(&mut self, store: &KvStore, key: Key, value: impl Into<Arc<Value>>) {
        let prev = store.get(&key);
        self.record(key.clone(), prev);
        store.put(key, value);
    }

    /// Perform a delete through the store, recording the pre-image.
    pub fn delete(&mut self, store: &KvStore, key: &Key) {
        let prev = store.get(key);
        self.record(key.clone(), prev);
        store.delete(key);
    }

    /// Undo all recorded writes, in reverse order.
    pub fn rollback(self, store: &KvStore) {
        for rec in self.records.into_iter().rev() {
            store.restore(rec.key, rec.previous);
        }
    }

    /// Keys this log would restore.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.records.iter().map(|r| &r.key)
    }

    /// The recorded `(key, pre-image)` pairs in record order — what a
    /// write-ahead log serializes alongside the post-images.
    pub fn records(&self) -> &[UndoRecord] {
        &self.records
    }

    /// The recorded pre-image for `key`, if this log touched it.
    /// `Some(None)` means the key did not exist before.
    pub fn pre_image(&self, key: &Key) -> Option<&Option<Arc<Value>>> {
        self.records
            .iter()
            .find(|r| r.key == *key)
            .map(|r| &r.previous)
    }

    /// Number of distinct keys recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_restores_overwritten_value() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(1));
        let mut log = UndoLog::new();
        log.put(&s, "k".into(), Value::Int(2));
        assert_eq!(s.get(&"k".into()).as_deref(), Some(&Value::Int(2)));
        log.rollback(&s);
        assert_eq!(s.get(&"k".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    fn rollback_removes_inserted_key() {
        let s = KvStore::new();
        let mut log = UndoLog::new();
        log.put(&s, "new".into(), Value::Int(5));
        assert!(s.contains(&"new".into()));
        log.rollback(&s);
        assert!(!s.contains(&"new".into()));
    }

    #[test]
    fn rollback_restores_deleted_key() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(9));
        let mut log = UndoLog::new();
        log.delete(&s, &"k".into());
        assert!(!s.contains(&"k".into()));
        log.rollback(&s);
        assert_eq!(s.get(&"k".into()).as_deref(), Some(&Value::Int(9)));
    }

    #[test]
    fn first_pre_image_wins() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(1));
        let mut log = UndoLog::new();
        log.put(&s, "k".into(), Value::Int(2));
        log.put(&s, "k".into(), Value::Int(3));
        assert_eq!(log.len(), 1);
        log.rollback(&s);
        assert_eq!(s.get(&"k".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    fn multiple_keys_rollback_in_reverse() {
        let s = KvStore::new();
        let mut log = UndoLog::new();
        log.put(&s, "a".into(), Value::Int(1));
        log.put(&s, "b".into(), Value::Int(2));
        log.delete(&s, &"a".into());
        log.rollback(&s);
        assert!(!s.contains(&"a".into()));
        assert!(!s.contains(&"b".into()));
    }

    #[test]
    fn pre_image_lookup() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(1));
        let mut log = UndoLog::new();
        log.put(&s, "k".into(), Value::Int(2));
        log.put(&s, "fresh".into(), Value::Int(3));
        assert_eq!(
            log.pre_image(&"k".into()),
            Some(&Some(Value::Int(1).into()))
        );
        assert_eq!(log.pre_image(&"fresh".into()), Some(&None));
        assert_eq!(log.pre_image(&"untouched".into()), None);
    }

    #[test]
    fn empty_log_rollback_is_noop() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(1));
        UndoLog::new().rollback(&s);
        assert_eq!(s.get(&"k".into()).as_deref(), Some(&Value::Int(1)));
        assert!(UndoLog::new().is_empty());
    }

    #[test]
    fn large_write_sets_dedupe_without_rescans() {
        // 20k writes over 2k distinct keys: would be ~20M key comparisons
        // with the old linear scan; the hash set keeps it linear.
        let s = KvStore::new();
        let mut log = UndoLog::new();
        for i in 0..20_000u64 {
            log.put(&s, Key::indexed("k", i % 2_000), Value::Int(i as i64));
        }
        assert_eq!(log.len(), 2_000);
        // First pre-image won for every key.
        assert_eq!(log.pre_image(&Key::indexed("k", 0)), Some(&None));
        log.rollback(&s);
        assert!(s.is_empty());
    }

    #[test]
    fn records_expose_key_and_pre_image_in_order() {
        let s = KvStore::new();
        s.put("a".into(), Value::Int(1));
        let mut log = UndoLog::new();
        log.put(&s, "a".into(), Value::Int(2));
        log.put(&s, "b".into(), Value::Int(3));
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].key.as_str(), "a");
        assert_eq!(recs[0].previous.as_deref(), Some(&Value::Int(1)));
        assert_eq!(recs[1].key.as_str(), "b");
        assert_eq!(recs[1].previous, None);
    }

    #[test]
    fn keys_iterates_recorded_keys() {
        let s = KvStore::new();
        let mut log = UndoLog::new();
        log.put(&s, "a".into(), Value::Int(1));
        log.put(&s, "b".into(), Value::Int(2));
        let keys: Vec<&str> = log.keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
