//! A sharded, versioned, thread-safe key-value store.
//!
//! Concurrency control lives *above* this store (in the lock manager and
//! the transaction protocols); the store itself only guarantees that each
//! individual operation is atomic and that versions increase monotonically
//! per key. Sharding by key hash keeps unrelated operations from contending
//! on one map lock.
//!
//! Hot-path properties (see the crate docs for the full contract):
//!
//! * **Zero rehashing** — shard selection and the shard `HashMap` both
//!   reuse the FNV-1a hash cached inside [`Key`]; no byte of key text is
//!   hashed after key construction.
//! * **Zero-copy reads** — values are stored as `Arc<Value>`, so `get`,
//!   `get_versioned` and `snapshot` return refcount bumps, never deep
//!   clones of string/byte payloads.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::value::{Key, KeyHashBuilder, Value};

/// A value with its per-key version. Versions start at 1 for the first
/// write and increase by 1 with every subsequent write to the same key.
#[derive(Clone, Debug, PartialEq)]
pub struct Versioned {
    /// The stored value (shared, never deep-cloned on read).
    pub value: Arc<Value>,
    /// Monotonic per-key version.
    pub version: u64,
}

type ShardMap = HashMap<Key, Versioned, KeyHashBuilder>;

/// The sharded store.
///
/// ```
/// use croesus_store::{KvStore, Value};
/// let store = KvStore::new();
/// store.put("balance/alice".into(), Value::Int(50));
/// assert_eq!(store.get(&"balance/alice".into()).as_deref(), Some(&Value::Int(50)));
/// assert_eq!(store.get_versioned(&"balance/alice".into()).unwrap().version, 1);
/// ```
pub struct KvStore {
    shards: Vec<RwLock<ShardMap>>,
}

impl KvStore {
    /// Default shard count: enough to keep 8–16 worker threads from
    /// colliding on map locks.
    pub const DEFAULT_SHARDS: usize = 32;

    /// Create a store with the default shard count.
    pub fn new() -> Self {
        KvStore::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Create a store with an explicit shard count. Panics if zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "store needs at least one shard");
        KvStore {
            shards: (0..shards)
                .map(|_| RwLock::new(ShardMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, key: &Key) -> &RwLock<ShardMap> {
        &self.shards[key.shard_index(self.shards.len())]
    }

    /// Read a value. Cheap: a shard read-lock, one hash-free map probe and
    /// an `Arc` clone.
    pub fn get(&self, key: &Key) -> Option<Arc<Value>> {
        self.shard(key)
            .read()
            .get(key)
            .map(|v| Arc::clone(&v.value))
    }

    /// Read a value with its version.
    pub fn get_versioned(&self, key: &Key) -> Option<Versioned> {
        self.shard(key).read().get(key).cloned()
    }

    /// Write a value; returns the previous versioned value if any.
    pub fn put(&self, key: Key, value: impl Into<Arc<Value>>) -> Option<Versioned> {
        let value = value.into();
        let mut shard = self.shard(&key).write();
        let next_version = shard.get(&key).map_or(1, |v| v.version + 1);
        shard.insert(
            key,
            Versioned {
                value,
                version: next_version,
            },
        )
    }

    /// Delete a key; returns the previous versioned value if any.
    pub fn delete(&self, key: &Key) -> Option<Versioned> {
        self.shard(key).write().remove(key)
    }

    /// Whether a key exists.
    pub fn contains(&self, key: &Key) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Restore a key to a previous state: `Some(value)` reinstates the
    /// value (bumping the version — history is linear, not rewound),
    /// `None` deletes the key. The undo machinery uses this.
    pub fn restore(&self, key: Key, previous: Option<Arc<Value>>) {
        match previous {
            Some(value) => {
                self.put(key, value);
            }
            None => {
                self.delete(&key);
            }
        }
    }

    /// Number of live keys (O(shards), takes all read locks briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Remove all keys.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    /// Snapshot every key-value pair (sorted by key, for deterministic
    /// comparisons in tests and checkers). Fills one preallocated buffer —
    /// no per-shard intermediate `Vec`s — and clones only `Arc`s.
    pub fn snapshot(&self) -> Vec<(Key, Versioned)> {
        let mut all: Vec<(Key, Versioned)> = Vec::with_capacity(self.len());
        for s in &self.shards {
            let shard = s.read();
            all.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let s = KvStore::new();
        assert_eq!(s.get(&"a".into()), None);
        s.put("a".into(), Value::Int(1));
        assert_eq!(s.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    fn get_is_zero_copy() {
        let s = KvStore::new();
        s.put("k".into(), Value::Str("payload".into()));
        let a = s.get(&"k".into()).unwrap();
        let b = s.get(&"k".into()).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "reads must share the stored allocation"
        );
    }

    #[test]
    fn versions_increase_monotonically() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(1));
        assert_eq!(s.get_versioned(&"k".into()).unwrap().version, 1);
        s.put("k".into(), Value::Int(2));
        assert_eq!(s.get_versioned(&"k".into()).unwrap().version, 2);
        s.delete(&"k".into());
        s.put("k".into(), Value::Int(3));
        // Deletion resets history for the key.
        assert_eq!(s.get_versioned(&"k".into()).unwrap().version, 1);
    }

    #[test]
    fn put_returns_previous() {
        let s = KvStore::new();
        assert!(s.put("k".into(), Value::Int(1)).is_none());
        let prev = s.put("k".into(), Value::Int(2)).unwrap();
        assert_eq!(prev.value, Value::Int(1));
        assert_eq!(prev.version, 1);
    }

    #[test]
    fn delete_removes() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(1));
        let prev = s.delete(&"k".into()).unwrap();
        assert_eq!(prev.value, Value::Int(1));
        assert!(!s.contains(&"k".into()));
        assert!(s.delete(&"k".into()).is_none());
    }

    #[test]
    fn restore_reinstates_or_deletes() {
        let s = KvStore::new();
        s.put("k".into(), Value::Int(2));
        s.restore("k".into(), Some(Value::Int(1).into()));
        assert_eq!(s.get(&"k".into()).as_deref(), Some(&Value::Int(1)));
        s.restore("k".into(), None);
        assert_eq!(s.get(&"k".into()), None);
    }

    #[test]
    fn len_and_clear() {
        let s = KvStore::new();
        for i in 0..100 {
            s.put(Key::indexed("k", i), Value::Int(i as i64));
        }
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let s = KvStore::new();
        for i in [3u64, 1, 2] {
            s.put(Key::indexed("k", i), Value::Int(i as i64));
        }
        let snap = s.snapshot();
        assert_eq!(snap.len(), 3);
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["k/1", "k/2", "k/3"]);
    }

    #[test]
    fn single_shard_still_works() {
        let s = KvStore::with_shards(1);
        s.put("a".into(), Value::Int(1));
        s.put("b".into(), Value::Int(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        KvStore::with_shards(0);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let s = Arc::new(KvStore::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        s.put(Key::indexed("t", t * 1000 + i), Value::Int(i as i64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 500);
    }

    #[test]
    fn concurrent_versioning_on_one_key_is_gapless() {
        let s = Arc::new(KvStore::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        s.put("hot".into(), Value::Int(0));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.get_versioned(&"hot".into()).unwrap().version, 1000);
    }
}
