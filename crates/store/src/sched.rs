//! Scheduler instrumentation hooks for the `croesus-mcheck` model checker.
//!
//! Compiled only under the `mcheck` feature. The production crates mark
//! interesting interleaving points (lock waits, WAL appends, stage
//! boundaries) by calling the free functions below; with no hook installed
//! they are near-free no-ops, and a checker installs a [`SchedHook`] *per
//! thread* to turn every marked point into a controlled context switch.
//!
//! The registry is thread-local on purpose: the model checker runs each
//! virtual task on its own OS thread and must not perturb unrelated test
//! threads running in the same process.
//!
//! Three kinds of points:
//!
//! * [`yield_point`] — the task could be preempted here; the scheduler may
//!   run any other ready task before this one continues.
//! * [`block_point`] — the task cannot make progress until some other task
//!   releases a resource (a lock). The scheduler must not reschedule it
//!   until a [`progress`] call signals that a release happened.
//! * [`progress`] — a resource was released; every blocked task becomes
//!   schedulable again.
//!
//! Call-site rule: never mark a yield/block point while holding an
//! internal mutex another instrumented path takes (the parked task would
//! hold it across the context switch and deadlock the harness for real).
//! The call sites in `lock.rs`, `wal::writer` and `croesus-txn` all mark
//! points *outside* their mutexes.

use std::cell::RefCell;
use std::sync::Arc;

/// A per-thread scheduling hook: the model checker's side of the contract.
pub trait SchedHook: Send + Sync {
    /// The current task reached a preemption point labelled `label`.
    fn yield_point(&self, label: &'static str);
    /// The current task is blocked on a resource until some [`progress`].
    fn block_point(&self, label: &'static str);
    /// The current task released a resource; wake blocked tasks.
    fn progress(&self, label: &'static str);
}

thread_local! {
    static HOOK: RefCell<Option<Arc<dyn SchedHook>>> = const { RefCell::new(None) };
}

/// Install `hook` for the current thread (replacing any previous one).
pub fn install(hook: Arc<dyn SchedHook>) {
    HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Remove the current thread's hook, if any.
pub fn uninstall() {
    HOOK.with(|h| *h.borrow_mut() = None);
}

/// Whether the current thread runs under a scheduling hook.
pub fn active() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

/// Clone the hook out of the registry before invoking it, so the
/// `RefCell` borrow never spans the (potentially parking) hook call.
fn with_hook(f: impl FnOnce(&dyn SchedHook)) {
    let hook = HOOK.with(|h| h.borrow().clone());
    if let Some(hook) = hook {
        f(&*hook);
    }
}

/// Mark a preemption point (no-op without an installed hook).
pub fn yield_point(label: &'static str) {
    with_hook(|h| h.yield_point(label));
}

/// Mark a blocked-until-progress point (no-op without an installed hook).
pub fn block_point(label: &'static str) {
    with_hook(|h| h.block_point(label));
}

/// Mark a resource release (no-op without an installed hook).
pub fn progress(label: &'static str) {
    with_hook(|h| h.progress(label));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter(AtomicUsize);
    impl SchedHook for Counter {
        fn yield_point(&self, _l: &'static str) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn block_point(&self, _l: &'static str) {
            self.0.fetch_add(100, Ordering::Relaxed);
        }
        fn progress(&self, _l: &'static str) {
            self.0.fetch_add(10_000, Ordering::Relaxed);
        }
    }

    #[test]
    fn hooks_fire_only_while_installed_and_only_on_this_thread() {
        yield_point("noop"); // nothing installed: must not panic
        assert!(!active());
        let hook = Arc::new(Counter(AtomicUsize::new(0)));
        install(Arc::clone(&hook) as Arc<dyn SchedHook>);
        assert!(active());
        yield_point("a");
        block_point("b");
        progress("c");
        // Another thread sees no hook.
        std::thread::spawn(|| {
            assert!(!active());
            yield_point("elsewhere");
        })
        .join()
        .unwrap();
        uninstall();
        yield_point("after");
        assert_eq!(hook.0.load(Ordering::Relaxed), 10_101);
    }
}
