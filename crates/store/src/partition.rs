//! Partitions: the unit of data placement in the edge-cloud model.
//!
//! "Each edge node maintains the state of a partition" (§2.1). A
//! [`Partition`] bundles a store with a lock manager; a [`PartitionMap`]
//! routes keys to partitions so the multi-partition protocols (§4.5) can
//! send lock requests and two-phase-commit votes to the right owner.

use std::sync::Arc;

use crate::kv::KvStore;
use crate::lock::{LockManager, LockPolicy};
use crate::value::Key;

/// Identifies a partition (and, in the edge-cloud model, the edge node
/// responsible for it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

/// A partition: one edge node's share of the database.
pub struct Partition {
    /// This partition's id.
    pub id: PartitionId,
    /// The partition's data.
    pub store: KvStore,
    /// The partition's lock manager.
    pub locks: LockManager,
}

impl Partition {
    /// Create a partition with the given lock policy.
    pub fn new(id: PartitionId, policy: LockPolicy) -> Self {
        Partition {
            id,
            store: KvStore::new(),
            locks: LockManager::new(policy),
        }
    }
}

/// Routes keys to partitions by hash.
pub struct PartitionMap {
    partitions: Vec<Arc<Partition>>,
}

impl PartitionMap {
    /// Create `n` partitions with the given lock policy. Panics if `n == 0`.
    pub fn new(n: u32, policy: LockPolicy) -> Self {
        assert!(n > 0, "need at least one partition");
        PartitionMap {
            partitions: (0..n)
                .map(|i| Arc::new(Partition::new(PartitionId(i), policy)))
                .collect(),
        }
    }

    /// The partition owning `key` (FNV-1a over the key text; stable across
    /// runs, unlike `DefaultHasher`). The hash is the one cached inside
    /// [`Key`] at construction, so routing costs an index computation —
    /// and stays byte-identical to the historical per-call FNV-1a scan.
    #[inline]
    pub fn partition_of(&self, key: &Key) -> &Arc<Partition> {
        &self.partitions[self.partition_index(key)]
    }

    #[inline]
    fn partition_index(&self, key: &Key) -> usize {
        (key.hash_u64() % self.partitions.len() as u64) as usize
    }

    /// Partition by id.
    pub fn get(&self, id: PartitionId) -> Option<&Arc<Partition>> {
        self.partitions.get(id.0 as usize)
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Arc<Partition>] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether there are no partitions (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Group keys by owning partition — the first step of any
    /// multi-partition operation. Single pass: keys are dropped into a
    /// bucket per partition (the partition count is fixed and small), so
    /// the cost is O(keys + partitions) rather than a linear group scan
    /// per key.
    pub fn group_by_partition<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a Key>,
    ) -> Vec<(PartitionId, Vec<Key>)> {
        let mut buckets: Vec<Vec<Key>> = (0..self.partitions.len()).map(|_| Vec::new()).collect();
        for key in keys {
            buckets[self.partition_index(key)].push(key.clone());
        }
        // Bucket index == partition id, so this is already id-sorted.
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, ks)| !ks.is_empty())
            .map(|(i, ks)| (PartitionId(i as u32), ks))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn routing_is_stable() {
        let pm = PartitionMap::new(4, LockPolicy::Block);
        let key = Key::new("user/7");
        let p1 = pm.partition_of(&key).id;
        let p2 = pm.partition_of(&key).id;
        assert_eq!(p1, p2);
    }

    #[test]
    fn routing_is_byte_stable_against_golden_values() {
        // Golden FNV-1a assignments computed independently of the Key
        // implementation: these pin the routing function across refactors
        // (the cached in-Key hash must keep routing byte-identical).
        let pm = PartitionMap::new(4, LockPolicy::Block);
        for (text, expected) in [
            ("user/7", 0u32),
            ("balance/alice", 0),
            ("k/0", 1),
            ("k/1", 2),
            ("k/2", 3),
            ("sighting/19", 1),
            ("rooms/library", 3),
        ] {
            assert_eq!(
                pm.partition_of(&Key::new(text)).id,
                PartitionId(expected),
                "routing changed for {text}"
            );
        }
        let pm3 = PartitionMap::new(3, LockPolicy::Block);
        for (text, expected) in [("user/7", 0u32), ("balance/alice", 1), ("k/2", 2)] {
            assert_eq!(pm3.partition_of(&Key::new(text)).id, PartitionId(expected));
        }
    }

    #[test]
    fn keys_spread_across_partitions() {
        let pm = PartitionMap::new(4, LockPolicy::Block);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(pm.partition_of(&Key::indexed("k", i)).id);
        }
        assert_eq!(seen.len(), 4, "all partitions should receive keys");
    }

    #[test]
    fn partition_stores_are_independent() {
        let pm = PartitionMap::new(2, LockPolicy::Block);
        pm.get(PartitionId(0))
            .unwrap()
            .store
            .put("k".into(), Value::Int(1));
        assert!(pm
            .get(PartitionId(1))
            .unwrap()
            .store
            .get(&"k".into())
            .is_none());
    }

    #[test]
    fn group_by_partition_covers_all_keys() {
        let pm = PartitionMap::new(3, LockPolicy::Block);
        let keys: Vec<Key> = (0..50).map(|i| Key::indexed("k", i)).collect();
        let groups = pm.group_by_partition(keys.iter());
        let total: usize = groups.iter().map(|(_, ks)| ks.len()).sum();
        assert_eq!(total, 50);
        for (pid, ks) in &groups {
            for k in ks {
                assert_eq!(pm.partition_of(k).id, *pid);
            }
        }
    }

    #[test]
    fn get_out_of_range_is_none() {
        let pm = PartitionMap::new(2, LockPolicy::Block);
        assert!(pm.get(PartitionId(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        PartitionMap::new(0, LockPolicy::Block);
    }
}
