//! Partitions: the unit of data placement in the edge-cloud model.
//!
//! "Each edge node maintains the state of a partition" (§2.1). A
//! [`Partition`] bundles a store with a lock manager; a [`PartitionMap`]
//! routes keys to partitions so the multi-partition protocols (§4.5) can
//! send lock requests and two-phase-commit votes to the right owner.

use std::sync::Arc;

use crate::kv::KvStore;
use crate::lock::{LockManager, LockPolicy};
use crate::value::Key;

/// Identifies a partition (and, in the edge-cloud model, the edge node
/// responsible for it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

/// A partition: one edge node's share of the database.
pub struct Partition {
    /// This partition's id.
    pub id: PartitionId,
    /// The partition's data.
    pub store: KvStore,
    /// The partition's lock manager.
    pub locks: LockManager,
}

impl Partition {
    /// Create a partition with the given lock policy.
    pub fn new(id: PartitionId, policy: LockPolicy) -> Self {
        Partition {
            id,
            store: KvStore::new(),
            locks: LockManager::new(policy),
        }
    }
}

/// Routes keys to partitions by hash.
pub struct PartitionMap {
    partitions: Vec<Arc<Partition>>,
}

impl PartitionMap {
    /// Create `n` partitions with the given lock policy. Panics if `n == 0`.
    pub fn new(n: u32, policy: LockPolicy) -> Self {
        assert!(n > 0, "need at least one partition");
        PartitionMap {
            partitions: (0..n)
                .map(|i| Arc::new(Partition::new(PartitionId(i), policy)))
                .collect(),
        }
    }

    /// The partition owning `key` (FNV-1a over the key text; stable across
    /// runs, unlike `DefaultHasher`).
    pub fn partition_of(&self, key: &Key) -> &Arc<Partition> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_str().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.partitions[(h % self.partitions.len() as u64) as usize]
    }

    /// Partition by id.
    pub fn get(&self, id: PartitionId) -> Option<&Arc<Partition>> {
        self.partitions.get(id.0 as usize)
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Arc<Partition>] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether there are no partitions (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Group keys by owning partition — the first step of any
    /// multi-partition operation.
    pub fn group_by_partition<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a Key>,
    ) -> Vec<(PartitionId, Vec<Key>)> {
        let mut groups: Vec<(PartitionId, Vec<Key>)> = Vec::new();
        for key in keys {
            let pid = self.partition_of(key).id;
            match groups.iter_mut().find(|(id, _)| *id == pid) {
                Some((_, ks)) => ks.push(key.clone()),
                None => groups.push((pid, vec![key.clone()])),
            }
        }
        groups.sort_by_key(|(id, _)| *id);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn routing_is_stable() {
        let pm = PartitionMap::new(4, LockPolicy::Block);
        let key = Key::new("user/7");
        let p1 = pm.partition_of(&key).id;
        let p2 = pm.partition_of(&key).id;
        assert_eq!(p1, p2);
    }

    #[test]
    fn keys_spread_across_partitions() {
        let pm = PartitionMap::new(4, LockPolicy::Block);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(pm.partition_of(&Key::indexed("k", i)).id);
        }
        assert_eq!(seen.len(), 4, "all partitions should receive keys");
    }

    #[test]
    fn partition_stores_are_independent() {
        let pm = PartitionMap::new(2, LockPolicy::Block);
        pm.get(PartitionId(0))
            .unwrap()
            .store
            .put("k".into(), Value::Int(1));
        assert!(pm.get(PartitionId(1)).unwrap().store.get(&"k".into()).is_none());
    }

    #[test]
    fn group_by_partition_covers_all_keys() {
        let pm = PartitionMap::new(3, LockPolicy::Block);
        let keys: Vec<Key> = (0..50).map(|i| Key::indexed("k", i)).collect();
        let groups = pm.group_by_partition(keys.iter());
        let total: usize = groups.iter().map(|(_, ks)| ks.len()).sum();
        assert_eq!(total, 50);
        for (pid, ks) in &groups {
            for k in ks {
                assert_eq!(pm.partition_of(k).id, *pid);
            }
        }
    }

    #[test]
    fn get_out_of_range_is_none() {
        let pm = PartitionMap::new(2, LockPolicy::Block);
        assert!(pm.get(PartitionId(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        PartitionMap::new(0, LockPolicy::Block);
    }
}
