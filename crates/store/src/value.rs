//! Keys and values.
//!
//! [`Key`] caches its own FNV-1a hash at construction: the hot path
//! (shard selection, `HashMap` lookup, partition routing) never re-hashes
//! the key text. [`Value`]s are stored behind `Arc` so reads are refcount
//! bumps, not deep clones — see the crate docs for the aliasing rules.

use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte string. This is the *routing* hash: it is stable
/// across runs and processes, and [`crate::PartitionMap`] has always used
/// exactly this function, so cached key hashes keep routing byte-identical.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Finalizing mix (splitmix64 tail). FNV-1a's low bits correlate with the
/// partition/shard residues, so everything that *indexes* by hash (shard
/// selection, `HashMap` buckets) goes through this avalanche first;
/// only partition routing uses the raw FNV value.
#[inline]
pub(crate) fn mix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

struct KeyInner {
    hash: u64,
    text: Box<str>,
}

/// A database key. Interned behind `Arc` — keys are cloned freely into
/// lock tables, undo logs and read/write sets — with its FNV-1a hash
/// computed exactly once at construction and reused everywhere:
/// equality checks, `HashMap` hashing (via [`KeyHashBuilder`] pass-through),
/// store/lock-manager shard selection and partition routing.
#[derive(Clone)]
pub struct Key(Arc<KeyInner>);

impl Key {
    /// Create a key from a string.
    pub fn new(s: &str) -> Self {
        Key(Arc::new(KeyInner {
            hash: fnv1a(s.as_bytes()),
            text: Box::from(s),
        }))
    }

    /// Key text.
    pub fn as_str(&self) -> &str {
        &self.0.text
    }

    /// The cached FNV-1a hash of the key text. Stable across runs and
    /// processes (unlike `DefaultHasher`), so it is safe to route on.
    #[inline]
    pub fn hash_u64(&self) -> u64 {
        self.0.hash
    }

    /// Shard index in `[0, n)` for in-process sharded containers. Uses the
    /// *upper* bits of the mixed hash so it stays decorrelated from
    /// `HashMap` bucket indices (low mixed bits) and partition residues
    /// (raw hash modulus).
    #[inline]
    pub(crate) fn shard_index(&self, n: usize) -> usize {
        ((mix64(self.0.hash) >> 32) % n as u64) as usize
    }

    /// A key in a numbered keyspace, e.g. `Key::indexed("user", 42)` →
    /// `"user/42"`. The workloads use this for YCSB-style key selection.
    pub fn indexed(space: &str, index: u64) -> Self {
        use std::fmt::Write;
        let mut text = String::with_capacity(space.len() + 21);
        text.push_str(space);
        text.push('/');
        write!(text, "{index}").expect("writing to a String cannot fail");
        Key(Arc::new(KeyInner {
            hash: fnv1a(text.as_bytes()),
            text: text.into_boxed_str(),
        }))
    }
}

impl PartialEq for Key {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality catches the common clone-of-same-key case; the
        // cached hash rejects almost all unequal keys without a byte scan.
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.hash == other.0.hash && self.0.text == other.0.text)
    }
}

impl Eq for Key {}

impl Hash for Key {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Single u64 write: with [`KeyHasher`] this makes map hashing a
        // pass-through of the cached hash instead of a SipHash of the text.
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic by text — ordering is a user-visible contract
        // (sorted snapshots, ordered lock acquisition).
        self.0.text.cmp(&other.0.text)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Arc::new(KeyInner {
            hash: fnv1a(s.as_bytes()),
            text: s.into_boxed_str(),
        }))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.as_str())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Pass-through [`Hasher`] for [`Key`]-keyed maps: consumes the single
/// `write_u64` of the cached key hash and finalizes with a splitmix64 mix, so a
/// map operation performs zero bytes of real hashing.
#[derive(Clone, Copy, Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.0)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only reached if a non-Key type is hashed with this hasher
        // (e.g. a unit test); fall back to FNV-1a rather than panic.
        self.0 = bytes.iter().fold(self.0 ^ FNV_OFFSET, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
        });
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Combine rather than overwrite so composite keys hashing several
        // u64s (e.g. `(TxnId, Key)` tuples) don't collapse to the last
        // write. For the single-write `Key` case this is `0 ^ n == n` —
        // the pure pass-through the hot path relies on.
        self.0 = self.0.rotate_left(32) ^ n;
    }
}

/// `BuildHasher` plugging [`KeyHasher`] into `HashMap`.
pub type KeyHashBuilder = BuildHasherDefault<KeyHasher>;

/// A stored value. A small sum type keeps the example applications natural
/// (token balances are integers, building info is text) without dragging in
/// serialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A signed integer (counters, token balances).
    Int(i64),
    /// A string (names, descriptions, reservation targets).
    Str(String),
    /// Raw bytes (opaque payloads).
    Bytes(Vec<u8>),
}

impl Value {
    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bytes inside, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate in-memory size, for store accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

// Heterogeneous equality so call sites can compare an `Arc<Value>` read
// straight against a plain `Value` without unwrapping.
impl PartialEq<Value> for Arc<Value> {
    fn eq(&self, other: &Value) -> bool {
        **self == *other
    }
}

impl PartialEq<Arc<Value>> for Value {
    fn eq(&self, other: &Arc<Value>) -> bool {
        *self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_and_indexing() {
        assert_eq!(Key::new("a"), Key::from("a"));
        assert_eq!(Key::indexed("user", 42).as_str(), "user/42");
        assert_ne!(Key::indexed("user", 1), Key::indexed("user", 2));
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        assert!(Key::new("a") < Key::new("b"));
        assert!(Key::indexed("k", 10) < Key::indexed("k", 9)); // lexicographic!
    }

    #[test]
    fn cached_hash_is_fnv1a_of_text() {
        for s in [
            "",
            "a",
            "user/42",
            "τ-unicode",
            "a/very/long/key/path/0123456789",
        ] {
            assert_eq!(Key::new(s).hash_u64(), fnv1a(s.as_bytes()));
        }
        // Construction routes (new / from-String / indexed) agree.
        assert_eq!(
            Key::indexed("user", 42).hash_u64(),
            Key::from(String::from("user/42")).hash_u64()
        );
    }

    #[test]
    fn indexed_formats_boundary_values() {
        assert_eq!(Key::indexed("k", 0).as_str(), "k/0");
        assert_eq!(
            Key::indexed("k", u64::MAX).as_str(),
            format!("k/{}", u64::MAX)
        );
    }

    #[test]
    fn key_hasher_passes_cached_hash_through() {
        use std::hash::BuildHasher;
        let key = Key::new("user/7");
        let hashed = KeyHashBuilder::default().hash_one(&key);
        assert_eq!(hashed, mix64(key.hash_u64()));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn value_sizes() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::from("abc").size_bytes(), 3);
        assert_eq!(Value::from(vec![0u8; 10]).size_bytes(), 10);
    }

    #[test]
    fn key_display() {
        assert_eq!(format!("{}", Key::new("x/1")), "x/1");
        assert_eq!(format!("{:?}", Key::new("x")), "Key(x)");
    }

    #[test]
    fn arc_value_compares_against_value() {
        let v: Arc<Value> = Arc::new(Value::Int(3));
        assert!(v == Value::Int(3));
        assert!(Value::Int(3) == v);
        assert!(v != Value::Int(4));
    }
}
