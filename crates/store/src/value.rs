//! Keys and values.

use std::fmt;
use std::sync::Arc;

/// A database key. Interned behind `Arc<str>` — keys are cloned freely into
/// lock tables, undo logs and read/write sets.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(Arc<str>);

impl Key {
    /// Create a key from a string.
    pub fn new(s: &str) -> Self {
        Key(Arc::from(s))
    }

    /// Key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A key in a numbered keyspace, e.g. `Key::indexed("user", 42)` →
    /// `"user/42"`. The workloads use this for YCSB-style key selection.
    pub fn indexed(space: &str, index: u64) -> Self {
        Key(Arc::from(format!("{space}/{index}").as_str()))
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Arc::from(s.as_str()))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A stored value. A small sum type keeps the example applications natural
/// (token balances are integers, building info is text) without dragging in
/// serialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A signed integer (counters, token balances).
    Int(i64),
    /// A string (names, descriptions, reservation targets).
    Str(String),
    /// Raw bytes (opaque payloads).
    Bytes(Vec<u8>),
}

impl Value {
    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bytes inside, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate in-memory size, for store accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_and_indexing() {
        assert_eq!(Key::new("a"), Key::from("a"));
        assert_eq!(Key::indexed("user", 42).as_str(), "user/42");
        assert_ne!(Key::indexed("user", 1), Key::indexed("user", 2));
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        assert!(Key::new("a") < Key::new("b"));
        assert!(Key::indexed("k", 10) < Key::indexed("k", 9)); // lexicographic!
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn value_sizes() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::from("abc").size_bytes(), 3);
        assert_eq!(Value::from(vec![0u8; 10]).size_bytes(), 10);
    }

    #[test]
    fn key_display() {
        assert_eq!(format!("{}", Key::new("x/1")), "x/1");
        assert_eq!(format!("{:?}", Key::new("x")), "Key(x)");
    }
}
