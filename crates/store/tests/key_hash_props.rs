//! Property tests for the cached key hash: the hash stored inside a `Key`
//! at construction must always equal an independent FNV-1a recomputation
//! of the key text, for every construction route, and the pass-through
//! map hasher must agree with it.

use proptest::prelude::*;

use croesus_store::value::{fnv1a, KeyHashBuilder};
use croesus_store::Key;

/// Independent FNV-1a reference implementation (kept deliberately separate
/// from the one in `croesus_store::value`).
fn reference_fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn arb_ascii_string() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..64)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

proptest! {
    #[test]
    fn cached_hash_equals_recomputation(s in arb_ascii_string()) {
        let key = Key::new(&s);
        prop_assert_eq!(key.hash_u64(), reference_fnv1a(s.as_bytes()));
        prop_assert_eq!(key.hash_u64(), fnv1a(s.as_bytes()));
    }

    #[test]
    fn construction_routes_agree(s in arb_ascii_string()) {
        let from_str = Key::new(&s);
        let from_string = Key::from(s.clone());
        prop_assert_eq!(from_str.hash_u64(), from_string.hash_u64());
        prop_assert_eq!(&from_str, &from_string);
    }

    #[test]
    fn indexed_matches_formatted(space in prop::collection::vec(97u8..123, 1..8), idx in any::<u64>()) {
        let space = String::from_utf8(space).expect("ascii letters");
        let indexed = Key::indexed(&space, idx);
        let formatted = Key::new(&format!("{space}/{idx}"));
        prop_assert_eq!(indexed.as_str(), formatted.as_str());
        prop_assert_eq!(indexed.hash_u64(), formatted.hash_u64());
        prop_assert_eq!(indexed.hash_u64(), reference_fnv1a(formatted.as_str().as_bytes()));
    }

    #[test]
    fn hashmap_round_trips_with_passthrough_hasher(
        texts in prop::collection::vec(arb_ascii_string(), 0..32)
    ) {
        let mut map: std::collections::HashMap<Key, usize, KeyHashBuilder> =
            std::collections::HashMap::default();
        for (i, t) in texts.iter().enumerate() {
            map.insert(Key::new(t), i); // later duplicates overwrite
        }
        for t in &texts {
            let last = texts.iter().rposition(|u| u == t).unwrap();
            prop_assert_eq!(map.get(&Key::new(t)), Some(&last));
        }
    }
}

#[test]
fn unicode_keys_hash_consistently() {
    for s in ["τ-unicode", "日本語/キー", "emoji/🔑", "mixed/π/42"] {
        assert_eq!(Key::new(s).hash_u64(), reference_fnv1a(s.as_bytes()));
    }
}
