//! Lincheck-style concurrent stress tests for the batched lock manager
//! (modeled on the lincheck approach: run many threads through randomized
//! concurrent schedules and verify the sequential invariants hold — here
//! mutual exclusion, wait-die progress, no lost wakeups and no deadlock
//! with interleaved shard batches).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use croesus_store::{Key, LockError, LockManager, LockMode, LockPolicy, TxnId};

/// Deterministic per-thread key-set generator (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn random_lock_set(rng: &mut Rng, key_range: u64, n: usize) -> Vec<(Key, LockMode)> {
    let mut pairs: Vec<(Key, LockMode)> = (0..n)
        .map(|_| {
            let k = Key::indexed("stress", rng.next() % key_range);
            let mode = if rng.next().is_multiple_of(4) {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            (k, mode)
        })
        .collect();
    // Dedup keeping the strongest mode, like RwSet::lock_pairs does.
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    pairs.dedup_by(|a, b| {
        if a.0 == b.0 {
            if a.1 == LockMode::Exclusive {
                b.1 = LockMode::Exclusive;
            }
            true
        } else {
            false
        }
    });
    pairs
}

/// Under wait-die, concurrent batched acquisitions over a small hot range
/// must all make progress (dying transactions retry with their original
/// id) while every granted exclusive key is held by exactly one owner.
#[test]
fn batched_wait_die_keeps_exclusion_and_progress() {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 150;
    const KEY_RANGE: u64 = 24;

    let lm = Arc::new(LockManager::new(LockPolicy::WaitDie));
    // Per-key owner tags: 0 = free, otherwise txn id + 1.
    let owners: Arc<Vec<AtomicU64>> = Arc::new((0..KEY_RANGE).map(|_| AtomicU64::new(0)).collect());
    let readers: Arc<Vec<AtomicU64>> =
        Arc::new((0..KEY_RANGE).map(|_| AtomicU64::new(0)).collect());
    let die_count = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let lm = Arc::clone(&lm);
            let owners = Arc::clone(&owners);
            let readers = Arc::clone(&readers);
            let die_count = Arc::clone(&die_count);
            thread::spawn(move || {
                let mut rng = Rng(t * 7919 + 1);
                for round in 0..ROUNDS {
                    let txn = TxnId(t + 1);
                    let pairs = random_lock_set(&mut rng, KEY_RANGE, 2 + (round % 5));
                    loop {
                        match lm.acquire_all(txn, &pairs, None) {
                            Ok(()) => break,
                            Err(LockError::Die) => {
                                die_count.fetch_add(1, Ordering::Relaxed);
                                thread::yield_now();
                            }
                            Err(e) => panic!("unexpected error under wait-die: {e}"),
                        }
                    }
                    // Validate exclusion while the batch is held.
                    let idx = |k: &Key| -> usize {
                        k.as_str().rsplit('/').next().unwrap().parse().unwrap()
                    };
                    for (k, mode) in &pairs {
                        let i = idx(k);
                        match mode {
                            LockMode::Exclusive => {
                                let prev = owners[i].swap(txn.0 + 1, Ordering::SeqCst);
                                assert_eq!(prev, 0, "exclusive key {k} already owned");
                                assert_eq!(
                                    readers[i].load(Ordering::SeqCst),
                                    0,
                                    "exclusive key {k} has readers"
                                );
                            }
                            LockMode::Shared => {
                                readers[i].fetch_add(1, Ordering::SeqCst);
                                assert_eq!(
                                    owners[i].load(Ordering::SeqCst),
                                    0,
                                    "shared key {k} has an exclusive owner"
                                );
                            }
                        }
                    }
                    // Hold the batch briefly so rounds genuinely overlap.
                    std::hint::black_box(&owners);
                    thread::yield_now();
                    for (k, mode) in &pairs {
                        let i = idx(k);
                        match mode {
                            LockMode::Exclusive => {
                                owners[i].store(0, Ordering::SeqCst);
                            }
                            LockMode::Shared => {
                                readers[i].fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                    }
                    lm.release_all(txn, pairs.iter().map(|(k, _)| k));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress worker panicked");
    }
    assert_eq!(lm.locked_keys(), 0, "all batches fully released");
    // Wait-die kills are timing-dependent (zero on a fully-serialized
    // schedule), so progress + exclusion above are the hard assertions;
    // the kill count is informational.
    eprintln!(
        "wait-die kills observed: {}",
        die_count.load(Ordering::Relaxed)
    );
}

/// Under Block, interleaved shard batches from transactions whose key sets
/// overlap pairwise in *opposite* orders must not deadlock: batches are
/// granted shard-by-shard in increasing shard index, all-or-nothing per
/// shard. A watchdog converts a hang into a test failure.
#[test]
fn interleaved_shard_batches_do_not_deadlock_under_block() {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 200;

    let lm = Arc::new(LockManager::new(LockPolicy::Block));
    // Key sets chosen to overlap heavily and span many shards.
    let all_keys: Vec<Key> = (0..40).map(|i| Key::indexed("dl", i)).collect();
    let done = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let lm = Arc::clone(&lm);
            let done = Arc::clone(&done);
            let all_keys = all_keys.clone();
            thread::spawn(move || {
                let mut rng = Rng(t * 104_729 + 3);
                for _ in 0..ROUNDS {
                    // Overlapping slice, direction alternating by thread.
                    let start = (rng.next() % 30) as usize;
                    let mut ks: Vec<(Key, LockMode)> = all_keys[start..start + 10]
                        .iter()
                        .map(|k| (k.clone(), LockMode::Exclusive))
                        .collect();
                    if t % 2 == 1 {
                        ks.reverse();
                    }
                    lm.acquire_all(TxnId(t), &ks, None).unwrap();
                    lm.release_all(TxnId(t), ks.iter().map(|(k, _)| k));
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    // Watchdog: poll the completion counter with a deadline BEFORE joining
    // (a join would block forever on a deadlocked worker and the deadline
    // would never be checked).
    let deadline = Instant::now() + Duration::from_secs(60);
    while done.load(Ordering::SeqCst) < THREADS as usize {
        assert!(
            Instant::now() < deadline,
            "deadlock suspected: {}/{} threads finished",
            done.load(Ordering::SeqCst),
            THREADS
        );
        thread::sleep(Duration::from_millis(20));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(done.load(Ordering::SeqCst), THREADS as usize);
    assert_eq!(lm.locked_keys(), 0);
}

/// Mixing single-key `acquire` with batched `acquire_all` on the same keys
/// must not lose wakeups: a batch waiting on a shard must be woken by a
/// single-key release in that shard, and vice versa.
#[test]
fn no_lost_wakeups_between_single_and_batched_paths() {
    const ROUNDS: usize = 300;
    let lm = Arc::new(LockManager::new(LockPolicy::Block));
    let keys: Vec<(Key, LockMode)> = (0..6)
        .map(|i| (Key::indexed("w", i), LockMode::Exclusive))
        .collect();

    let batcher = {
        let lm = Arc::clone(&lm);
        let keys = keys.clone();
        thread::spawn(move || {
            for _ in 0..ROUNDS {
                lm.acquire_all(TxnId(1), &keys, None).unwrap();
                lm.release_all(TxnId(1), keys.iter().map(|(k, _)| k));
            }
        })
    };
    let singles: Vec<_> = (0..3u64)
        .map(|t| {
            let lm = Arc::clone(&lm);
            let keys = keys.clone();
            thread::spawn(move || {
                for round in 0..ROUNDS {
                    let (k, mode) = &keys[(round as u64 + t) as usize % keys.len()];
                    lm.acquire(TxnId(10 + t), k, *mode, None).unwrap();
                    lm.release(TxnId(10 + t), k);
                }
            })
        })
        .collect();

    batcher.join().expect("batcher panicked");
    for s in singles {
        s.join().expect("single-key worker panicked");
    }
    assert_eq!(lm.locked_keys(), 0);
}

/// Failed batched acquisition (NoWait) under concurrency must roll back
/// completely: after the storm, retrying every set serially succeeds.
#[test]
fn concurrent_nowait_failures_leave_no_residue() {
    const THREADS: u64 = 8;
    let lm = Arc::new(LockManager::new(LockPolicy::NoWait));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let lm = Arc::clone(&lm);
            thread::spawn(move || {
                let mut rng = Rng(t + 17);
                let mut wins = 0u64;
                for round in 0..400 {
                    let pairs = random_lock_set(&mut rng, 16, 3 + round % 4);
                    if lm.acquire_all(TxnId(t), &pairs, None).is_ok() {
                        wins += 1;
                        lm.release_all(TxnId(t), pairs.iter().map(|(k, _)| k));
                    }
                }
                wins
            })
        })
        .collect();
    let mut total_wins = 0;
    for h in handles {
        total_wins += h.join().expect("worker panicked");
    }
    assert!(total_wins > 0, "some batches must have succeeded");
    assert_eq!(
        lm.locked_keys(),
        0,
        "failed no-wait batches must leave zero residue"
    );
    // Sanity: the table is genuinely clean — a full sweep lock succeeds.
    let sweep: Vec<(Key, LockMode)> = (0..16)
        .map(|i| (Key::indexed("stress", i), LockMode::Exclusive))
        .collect();
    lm.acquire_all(TxnId(99), &sweep, None).unwrap();
    lm.release_all(TxnId(99), sweep.iter().map(|(k, _)| k));
    assert_eq!(lm.locked_keys(), 0);
}

/// The batch path must agree with the single-key path on re-entrancy and
/// upgrades: a transaction holding part of a batch already (in weaker or
/// equal modes) can still batch-acquire the full set.
#[test]
fn batch_reacquisition_is_reentrant_and_upgrades() {
    let lm = LockManager::new(LockPolicy::NoWait);
    let a = Key::new("re/a");
    let b = Key::new("re/b");
    lm.lock(TxnId(1), &a, LockMode::Shared).unwrap();
    let pairs = vec![
        (a.clone(), LockMode::Exclusive),
        (b.clone(), LockMode::Shared),
    ];
    lm.acquire_all(TxnId(1), &pairs, None).unwrap();
    assert_eq!(lm.held_mode(TxnId(1), &a), Some(LockMode::Exclusive));
    assert_eq!(lm.held_mode(TxnId(1), &b), Some(LockMode::Shared));
    // Downgrade does not overwrite.
    lm.acquire_all(TxnId(1), &[(a.clone(), LockMode::Shared)], None)
        .unwrap();
    assert_eq!(lm.held_mode(TxnId(1), &a), Some(LockMode::Exclusive));
    lm.release_all(TxnId(1), [&a, &b]);
    assert_eq!(lm.locked_keys(), 0);
}

/// Keys sharing one shard exercise the intra-shard all-or-nothing grant:
/// with a single shard, every batch serializes through one mutex and the
/// exclusion invariant must still hold.
#[test]
fn single_shard_batches_still_exclude() {
    let lm = Arc::new(LockManager::with_shards(LockPolicy::Block, 1));
    let in_cs = Arc::new(AtomicUsize::new(0));
    let keys: Vec<(Key, LockMode)> = (0..4)
        .map(|i| (Key::indexed("one", i), LockMode::Exclusive))
        .collect();
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let lm = Arc::clone(&lm);
            let keys = keys.clone();
            let in_cs = Arc::clone(&in_cs);
            thread::spawn(move || {
                for _ in 0..200 {
                    lm.acquire_all(TxnId(t), &keys, None).unwrap();
                    assert_eq!(in_cs.fetch_add(1, Ordering::SeqCst), 0);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lm.release_all(TxnId(t), keys.iter().map(|(k, _)| k));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(lm.locked_keys(), 0);
}

/// A sanity map from key text to lock-table behavior: held_mode and
/// locked_keys must see exactly what acquire_all granted (catches hash /
/// equality mismatches between the batch path and probe path).
#[test]
fn batch_grants_are_visible_to_point_queries() {
    let lm = LockManager::new(LockPolicy::Block);
    let pairs: Vec<(Key, LockMode)> = (0..64)
        .map(|i| {
            let mode = if i % 3 == 0 {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            (Key::indexed("vis", i), mode)
        })
        .collect();
    lm.acquire_all(TxnId(7), &pairs, None).unwrap();
    let expected: HashMap<&str, LockMode> = pairs.iter().map(|(k, m)| (k.as_str(), *m)).collect();
    assert_eq!(lm.locked_keys(), 64);
    for (k, _) in &pairs {
        assert_eq!(lm.held_mode(TxnId(7), k), Some(expected[k.as_str()]));
    }
    lm.release_all(TxnId(7), pairs.iter().map(|(k, _)| k));
    assert_eq!(lm.locked_keys(), 0);
}
