//! Ready-made scenarios over the real protocol stack: scripted multi-stage
//! transactions racing through MS-SR / MS-IA / staged executors with a
//! strict-sync in-memory WAL, plus a 2PC coordinator-crash scenario.
//!
//! Every scenario expresses the DESIGN.md commit-point table as invariant
//! predicates checked at the end of **every schedule** and at **every
//! WAL-record-boundary crash point** within it:
//!
//! * acked final commits survive any later crash point;
//! * MS-SR transactions un-happen atomically (a commit point implies the
//!   final commit — nothing partial is ever replayed);
//! * MS-IA / staged acked stages are durable commit points;
//! * unfinalized transactions are retracted and apologized for
//!   (apologies ⊇ retracted state — enforced inside [`crate::crash::sweep`]);
//! * 2PC decisions are durable before any participant enters phase 2 and
//!   are never contradicted by in-doubt resolution.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use croesus_obs::EdgeObs;
use croesus_store::{Key, KvStore, LockManager, LockPolicy, PartitionMap, TxnId, Value};
use croesus_txn::tpc::ParticipantWrites;
use croesus_txn::{
    Coordinator, ExecutorCore, HistoryRecorder, JobQueue, MsIaExecutor, MultiStageProtocol,
    MultiStageProtocolExt, Participant, PartitionParticipant, ProtocolKind, RwSet, StageCtx,
    StagedExecutor, TpcOutcome, TsplExecutor, TxnError, TxnHandle,
};
use croesus_wal::{LogShipper, MemStorage, PipelineConfig, Wal, WalConfig};

use crate::crash::{sweep, CrashCut};
use crate::explore::Scenario;
use crate::scheduler::{RunEnd, TaskFn};

/// One operation inside a stage body.
#[derive(Clone, Copy, Debug)]
pub enum StageOp {
    /// `key = value`.
    Write(&'static str, i64),
    /// `key += delta` (missing reads as 0).
    Add(&'static str, i64),
    /// `dst = src` (missing reads as 0) — a dependent read, the probe for
    /// dirty-read/commit-point bugs.
    CopyFrom(&'static str, &'static str),
    /// `ctx.retract_self(reason)` — the apology path.
    RetractSelf(&'static str),
}

/// One stage: its declared read/write set and its body.
#[derive(Clone, Debug)]
pub struct StageScript {
    /// Declared footprint (binding under MS-SR).
    pub rw: RwSet,
    /// Operations the body performs, in order.
    pub ops: Vec<StageOp>,
}

/// A scripted multi-stage transaction.
#[derive(Clone, Debug)]
pub struct TxnScript {
    /// Transaction id (WaitDie age: smaller = older).
    pub txn: TxnId,
    /// The stages, initial first.
    pub stages: Vec<StageScript>,
}

/// A stage-commit acknowledgement, as the client would see it: sampled
/// *after* the stage call returned, with the WAL record count at that
/// moment. `records_at_ack ≤` a crash cut's frame count means everything
/// the client was promised is inside that cut.
#[derive(Clone, Copy, Debug)]
pub struct Ack {
    /// The transaction.
    pub txn: TxnId,
    /// Stage index.
    pub stage: usize,
    /// Whether this was the final stage.
    pub is_final: bool,
    /// `wal.stats().records` right after the stage returned.
    pub records_at_ack: u64,
    /// The stage aborted instead of committing.
    pub aborted: bool,
}

/// Any of the three protocol executors, held concretely so tests can reach
/// executor-specific switches (the MS-SR mutation flag).
pub enum AnyProtocol {
    /// Two-Stage 2PL.
    MsSr(TsplExecutor),
    /// Invariant-confluence + apologies.
    MsIa(MsIaExecutor),
    /// The m-stage generalization.
    Staged(StagedExecutor),
}

impl AnyProtocol {
    fn build(kind: ProtocolKind, core: ExecutorCore) -> Self {
        match kind {
            ProtocolKind::MsSr => AnyProtocol::MsSr(TsplExecutor::from_core(core)),
            ProtocolKind::MsIa => AnyProtocol::MsIa(MsIaExecutor::from_core(core)),
            ProtocolKind::Staged => AnyProtocol::Staged(StagedExecutor::from_core(core)),
        }
    }

    /// The unified protocol view.
    pub fn as_dyn(&self) -> &dyn MultiStageProtocol {
        match self {
            AnyProtocol::MsSr(p) => p,
            AnyProtocol::MsIa(p) => p,
            AnyProtocol::Staged(p) => p,
        }
    }
}

/// The world one schedule runs in: a fresh executor + store + strict-sync
/// in-memory WAL, rebuilt per schedule.
pub struct ProtoWorld {
    /// The executor under test.
    pub protocol: AnyProtocol,
    /// Its store.
    pub store: Arc<KvStore>,
    /// Its lock manager.
    pub locks: Arc<LockManager>,
    /// Its WAL (strict sync: every append is durable on return).
    pub wal: Arc<Wal>,
    /// The WAL's backing storage — `all_bytes()` is the crash-sweep input.
    pub probe: MemStorage,
    /// History recorder for the serializability checks.
    pub history: HistoryRecorder,
    /// Client-visible acks, in ack order.
    pub acks: Mutex<Vec<Ack>>,
    /// The observability stream (disabled unless the scenario traces).
    pub obs: EdgeObs,
}

/// Extra per-cut predicate a scenario can attach to the crash sweep.
pub type CutCheck = Arc<dyn Fn(&CrashCut<'_>) -> Result<(), String> + Send + Sync>;

/// Scripted transactions racing through one protocol executor.
pub struct ProtocolScenario {
    /// Which protocol.
    pub kind: ProtocolKind,
    /// Scenario label for reports.
    pub label: String,
    /// Lock policy override (`None` = the protocol's default).
    pub policy: Option<LockPolicy>,
    /// The racing transactions, one task each.
    pub scripts: Vec<TxnScript>,
    /// Whether deadlocking schedules are legitimate outcomes (the MS-SR
    /// Block-policy demo) rather than violations.
    pub deadlock_expected: bool,
    /// Arm the MS-SR log-final-after-release mutation (self-test).
    pub mutate_ms_sr: bool,
    /// Scenario-specific crash-cut predicate.
    pub extra_crash_check: Option<CutCheck>,
    /// Collect a structured event trace and verify it against the
    /// `croesus_obs` ordering contract at the end of every schedule.
    pub trace: bool,
}

impl ProtocolScenario {
    /// Enable per-schedule event tracing + ordering-contract checking.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

fn apply_ops(ctx: &mut StageCtx<'_>, ops: &[StageOp]) -> Result<(), TxnError> {
    for op in ops {
        match *op {
            StageOp::Write(key, v) => ctx.write(key, v)?,
            StageOp::Add(key, delta) => {
                let cur = ctx.read(key)?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write(key, cur + delta)?;
            }
            StageOp::CopyFrom(src, dst) => {
                let cur = ctx.read(src)?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write(dst, cur)?;
            }
            StageOp::RetractSelf(reason) => {
                ctx.retract_self(reason);
            }
        }
    }
    Ok(())
}

fn run_script(world: &ProtoWorld, script: &TxnScript) {
    let rws: Vec<RwSet> = script.stages.iter().map(|s| s.rw.clone()).collect();
    let mut handle: Option<TxnHandle> = Some(world.protocol.as_dyn().begin(script.txn, &rws));
    for (i, s) in script.stages.iter().enumerate() {
        let h = handle
            .take()
            .expect("script length matches declared stages");
        match world
            .protocol
            .as_dyn()
            .stage(h, &s.rw, |ctx| apply_ops(ctx, &s.ops))
        {
            Ok((_, next)) => {
                world.acks.lock().push(Ack {
                    txn: script.txn,
                    stage: i,
                    is_final: next.is_none(),
                    records_at_ack: world.wal.stats().records,
                    aborted: false,
                });
                handle = next;
            }
            Err(_) => {
                // The protocol rolled everything back; the client sees an
                // abort. No retry: keeps the schedule space finite.
                world.acks.lock().push(Ack {
                    txn: script.txn,
                    stage: i,
                    is_final: false,
                    records_at_ack: world.wal.stats().records,
                    aborted: true,
                });
                return;
            }
        }
    }
}

impl Scenario for ProtocolScenario {
    type World = ProtoWorld;

    fn name(&self) -> String {
        format!("{}/{}", self.kind.paper_name(), self.label)
    }

    fn build(&self) -> Arc<ProtoWorld> {
        let policy = self
            .policy
            .unwrap_or_else(|| self.kind.default_lock_policy());
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(policy));
        let history = HistoryRecorder::new();
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        let obs = if self.trace {
            EdgeObs::standalone(0)
        } else {
            EdgeObs::disabled()
        };
        wal.set_obs(obs.clone());
        let wal = Arc::new(wal);
        let core = ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks))
            .with_history(history.clone())
            .with_obs(obs.clone())
            .with_wal(Arc::clone(&wal));
        let protocol = AnyProtocol::build(self.kind, core);
        if self.mutate_ms_sr {
            match &protocol {
                AnyProtocol::MsSr(p) => p.enable_log_final_after_release_mutation(),
                _ => panic!("the mutation self-test targets MS-SR"),
            }
        }
        Arc::new(ProtoWorld {
            protocol,
            store,
            locks,
            wal,
            probe,
            history,
            acks: Mutex::new(Vec::new()),
            obs,
        })
    }

    fn tasks(&self, world: &Arc<ProtoWorld>) -> Vec<TaskFn> {
        self.scripts
            .iter()
            .map(|script| {
                let world = Arc::clone(world);
                let script = script.clone();
                Box::new(move || run_script(&world, &script)) as TaskFn
            })
            .collect()
    }

    fn fingerprint(&self, world: &ProtoWorld) -> u64 {
        let mut h = DefaultHasher::new();
        let mut snapshot = world.store.snapshot();
        snapshot.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        for (k, v) in snapshot {
            k.as_str().hash(&mut h);
            format!("{:?}", v.value).hash(&mut h);
        }
        world.probe.all_bytes().hash(&mut h);
        world.locks.locked_keys().hash(&mut h);
        format!("{:?}", world.history.events()).hash(&mut h);
        for a in world.acks.lock().iter() {
            (a.txn.0, a.stage, a.is_final, a.records_at_ack, a.aborted).hash(&mut h);
        }
        h.finish()
    }

    fn check(&self, world: &ProtoWorld, end: &RunEnd) -> Result<(), String> {
        match end {
            RunEnd::Panic { message } => return Err(format!("task panic: {message}")),
            RunEnd::Deadlock { blocked } => {
                return if self.deadlock_expected {
                    Ok(())
                } else {
                    Err(format!("unexpected deadlock: {blocked:?}"))
                };
            }
            RunEnd::Complete => {}
        }

        // Every transaction finished (committed or aborted): no lock may
        // survive the schedule.
        let leaked = world.locks.locked_keys();
        if leaked != 0 {
            return Err(format!("{leaked} locks leaked after all txns finished"));
        }

        // The ordering contract holds on every explored interleaving, not
        // just the fault-free fleet runs: replay this schedule's event
        // stream through the executable checker.
        if world.obs.is_enabled() {
            croesus_obs::check_stream(&world.obs.events(), world.obs.dropped() > 0)
                .map_err(|v| format!("event-ordering contract: {v}"))?;
        }

        let checker = world.history.checker();
        match self.kind {
            ProtocolKind::MsSr => checker
                .check_ms_sr()
                .map_err(|e| format!("MS-SR history: {e}"))?,
            ProtocolKind::MsIa | ProtocolKind::Staged => checker
                .check_stage_order()
                .map_err(|e| format!("stage order: {e}"))?,
        }

        world
            .wal
            .flush()
            .map_err(|e| format!("final flush failed: {e}"))?;
        let log = world.probe.all_bytes();
        let acks = world.acks.lock().clone();
        let kind = self.kind;
        let extra = self.extra_crash_check.clone();
        sweep(&log, |cut| {
            // MS-SR un-happens atomically: its only durable commit point is
            // the final one, so a replayed commit point implies FINAL.
            if kind == ProtocolKind::MsSr {
                for t in &cut.oracle.initial {
                    if !cut.oracle.finalized.contains(t) {
                        return Err(format!(
                            "MS-SR txn {t} replayed a non-final commit point — \
                             partial transactions must un-happen"
                        ));
                    }
                }
            }
            // Acked durability: anything acknowledged to the client by
            // record `r` must be honoured by every cut that contains `r`.
            for a in acks.iter().filter(|a| !a.aborted) {
                if (a.records_at_ack as usize) > cut.frames {
                    continue;
                }
                match kind {
                    ProtocolKind::MsSr => {
                        if a.is_final && !cut.oracle.finalized.contains(&a.txn.0) {
                            return Err(format!(
                                "acked final commit of {} lost at this cut",
                                a.txn
                            ));
                        }
                    }
                    ProtocolKind::MsIa | ProtocolKind::Staged => {
                        // Every stage is a client-visible durable commit.
                        if !cut.oracle.initial.contains(&a.txn.0) {
                            return Err(format!(
                                "acked stage {} of {} lost at this cut",
                                a.stage, a.txn
                            ));
                        }
                        if a.is_final && !cut.oracle.finalized.contains(&a.txn.0) {
                            return Err(format!(
                                "acked final commit of {} lost at this cut",
                                a.txn
                            ));
                        }
                    }
                }
            }
            if let Some(f) = &extra {
                f(cut)?;
            }
            Ok(())
        })
    }
}

/// The canonical 2-txn / 2-stage conflict: t1 rewrites `a`; t2 copies `a`
/// into `b` and then bumps `b`. Exhaustively explorable for all three
/// protocols.
#[must_use]
pub fn two_txn_two_stage(kind: ProtocolKind) -> ProtocolScenario {
    ProtocolScenario {
        kind,
        label: "2txn-2stage".into(),
        policy: None,
        scripts: vec![
            TxnScript {
                txn: TxnId(1),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().write("a"),
                        ops: vec![StageOp::Write("a", 1)],
                    },
                    StageScript {
                        rw: RwSet::new().write("a"),
                        ops: vec![StageOp::Write("a", 10)],
                    },
                ],
            },
            TxnScript {
                txn: TxnId(2),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().read("a").write("b"),
                        ops: vec![StageOp::CopyFrom("a", "b")],
                    },
                    StageScript {
                        rw: RwSet::new().write("b"),
                        ops: vec![StageOp::Add("b", 100)],
                    },
                ],
            },
        ],
        deadlock_expected: false,
        mutate_ms_sr: false,
        extra_crash_check: None,
        trace: false,
    }
}

/// MS-IA's apology path: t1 retracts itself in its final section while t2
/// commits independently — the crash sweep checks retraction records and
/// apology coverage at every cut.
#[must_use]
pub fn retract_self(kind: ProtocolKind) -> ProtocolScenario {
    ProtocolScenario {
        kind,
        label: "retract-self".into(),
        policy: None,
        scripts: vec![
            TxnScript {
                txn: TxnId(1),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().write("a"),
                        ops: vec![StageOp::Write("a", 1)],
                    },
                    StageScript {
                        rw: RwSet::new().write("a"),
                        ops: vec![
                            StageOp::RetractSelf("cloud disagreed"),
                            StageOp::Write("a", 2),
                        ],
                    },
                ],
            },
            TxnScript {
                txn: TxnId(2),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().write("b"),
                        ops: vec![StageOp::Write("b", 5)],
                    },
                    StageScript {
                        rw: RwSet::new().write("b"),
                        ops: vec![StageOp::Add("b", 1)],
                    },
                ],
            },
        ],
        deadlock_expected: false,
        mutate_ms_sr: false,
        extra_crash_check: None,
        trace: false,
    }
}

/// The MS-SR Block-policy hazard: crossing initial/later lock sets
/// genuinely deadlock under `LockPolicy::Block` — the reason MS-SR
/// defaults to WaitDie. The checker must *find* the deadlocking schedule.
#[must_use]
pub fn ms_sr_block_deadlock() -> ProtocolScenario {
    ProtocolScenario {
        kind: ProtocolKind::MsSr,
        label: "block-deadlock".into(),
        policy: Some(LockPolicy::Block),
        scripts: vec![
            TxnScript {
                txn: TxnId(1),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().write("x"),
                        ops: vec![StageOp::Write("x", 1)],
                    },
                    StageScript {
                        rw: RwSet::new().write("y"),
                        ops: vec![StageOp::Write("y", 1)],
                    },
                ],
            },
            TxnScript {
                txn: TxnId(2),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().write("y"),
                        ops: vec![StageOp::Write("y", 2)],
                    },
                    StageScript {
                        rw: RwSet::new().write("x"),
                        ops: vec![StageOp::Write("x", 2)],
                    },
                ],
            },
        ],
        deadlock_expected: true,
        mutate_ms_sr: false,
        extra_crash_check: None,
        trace: false,
    }
}

/// The mutation self-test scenario: t1's final section writes `x = 1`; t2
/// copies `x` into `y`. Under the armed mutation (final commit logged
/// *after* lock release) a schedule exists where t2 commits durably with
/// `y = 1` while t1's final record is still unlogged — the crash-cut
/// predicate below catches exactly that.
#[must_use]
pub fn ms_sr_commit_point(mutate: bool) -> ProtocolScenario {
    ProtocolScenario {
        kind: ProtocolKind::MsSr,
        label: if mutate {
            "commit-point-mutated".into()
        } else {
            "commit-point".into()
        },
        policy: None,
        scripts: vec![
            TxnScript {
                txn: TxnId(1),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().write("x"),
                        ops: vec![],
                    },
                    StageScript {
                        rw: RwSet::new().write("x"),
                        ops: vec![StageOp::Write("x", 1)],
                    },
                ],
            },
            TxnScript {
                txn: TxnId(2),
                stages: vec![
                    StageScript {
                        rw: RwSet::new().read("x").write("y"),
                        ops: vec![StageOp::CopyFrom("x", "y")],
                    },
                    StageScript {
                        rw: RwSet::new(),
                        ops: vec![],
                    },
                ],
            },
        ],
        deadlock_expected: false,
        mutate_ms_sr: mutate,
        extra_crash_check: Some(Arc::new(|cut: &CrashCut<'_>| {
            // If t2's committed `y` carries t1's final value, t1's final
            // commit must be in the same durable prefix — otherwise a
            // crash resurrects a value derived from a transaction that
            // un-happened.
            let y_is_dirty = cut.oracle.finalized.contains(&2)
                && cut.oracle.store.get("y") == Some(&Value::Int(1))
                && !cut.oracle.finalized.contains(&1);
            if y_is_dirty {
                Err("t2 durably committed y copied from t1's unlogged final write".into())
            } else {
                Ok(())
            }
        })),
        trace: false,
    }
}

/// A 3-txn scenario over a shared hot key — too large to enumerate within
/// a small DFS budget, exercising the seeded-sampling fallback.
#[must_use]
pub fn three_txn_hot_key(kind: ProtocolKind) -> ProtocolScenario {
    let script = |id: u64| TxnScript {
        txn: TxnId(id),
        stages: vec![
            StageScript {
                rw: RwSet::new().read("hot").write("hot"),
                ops: vec![StageOp::Add("hot", 1)],
            },
            StageScript {
                rw: RwSet::new().write("hot").write("out"),
                ops: vec![StageOp::Add("hot", 1), StageOp::CopyFrom("hot", "out")],
            },
        ],
    };
    ProtocolScenario {
        kind,
        label: "3txn-hot-key".into(),
        policy: None,
        scripts: vec![script(1), script(2), script(3)],
        deadlock_expected: false,
        mutate_ms_sr: false,
        extra_crash_check: None,
        trace: false,
    }
}

// ---------------------------------------------------------------------------
// Wave-queue runtime
// ---------------------------------------------------------------------------

/// The world of the wave-queue scenario: the edge runtime's bounded
/// [`JobQueue`] driven by virtual producer/consumer tasks.
pub struct WaveQueueWorld {
    /// The queue under test; capacity below the total job count so
    /// admission control genuinely blocks in some schedules.
    pub queue: JobQueue,
    /// Producers still running — the last one to finish closes the queue.
    pub producers_left: AtomicUsize,
    /// Per-job execution counts: every job must run exactly once.
    pub ran: Vec<AtomicUsize>,
}

/// The edge runtime's job queue under the model checker.
///
/// Producers push jobs through the bounded queue while consumers drain it,
/// exploring every interleaving of the `runtime.queue.*` yield and block
/// points: [`JobQueue::push`]'s admission-control wait on a full queue,
/// [`JobQueue::pop`]'s wait on an empty one, and the close-drain
/// handshake. Invariants: no schedule deadlocks (the close must wake every
/// blocked waiter), every job executes exactly once, and the queue is
/// drained when all tasks finish.
pub struct WaveQueueScenario {
    /// Producer tasks.
    pub producers: usize,
    /// Jobs each producer pushes.
    pub jobs_per_producer: usize,
    /// Consumer tasks.
    pub consumers: usize,
    /// Queue capacity (the admission-control bound).
    pub capacity: usize,
}

/// The canonical instance: 2 producers × 2 jobs through a capacity-2
/// queue into 2 consumers — small enough to enumerate exhaustively, large
/// enough that pushes block on capacity and pops block on emptiness.
#[must_use]
pub fn wave_queue() -> WaveQueueScenario {
    WaveQueueScenario {
        producers: 2,
        jobs_per_producer: 2,
        consumers: 2,
        capacity: 2,
    }
}

impl Scenario for WaveQueueScenario {
    type World = WaveQueueWorld;

    fn name(&self) -> String {
        format!(
            "runtime/wave-queue-{}x{}-cap{}",
            self.producers, self.jobs_per_producer, self.capacity
        )
    }

    fn build(&self) -> Arc<WaveQueueWorld> {
        Arc::new(WaveQueueWorld {
            queue: JobQueue::new(self.capacity),
            producers_left: AtomicUsize::new(self.producers),
            ran: (0..self.producers * self.jobs_per_producer)
                .map(|_| AtomicUsize::new(0))
                .collect(),
        })
    }

    fn tasks(&self, world: &Arc<WaveQueueWorld>) -> Vec<TaskFn> {
        let mut tasks: Vec<TaskFn> = Vec::new();
        for p in 0..self.producers {
            let world = Arc::clone(world);
            let jobs = self.jobs_per_producer;
            tasks.push(Box::new(move || {
                for j in 0..jobs {
                    let idx = p * jobs + j;
                    let w = Arc::clone(&world);
                    world.queue.push(Box::new(move || {
                        w.ran[idx].fetch_add(1, Ordering::SeqCst);
                    }));
                }
                if world.producers_left.fetch_sub(1, Ordering::SeqCst) == 1 {
                    world.queue.close();
                }
            }));
        }
        for _ in 0..self.consumers {
            let world = Arc::clone(world);
            tasks.push(Box::new(move || {
                while let Some(job) = world.queue.pop() {
                    job();
                }
            }));
        }
        tasks
    }

    fn fingerprint(&self, world: &WaveQueueWorld) -> u64 {
        let mut h = DefaultHasher::new();
        for r in &world.ran {
            r.load(Ordering::SeqCst).hash(&mut h);
        }
        world.queue.len().hash(&mut h);
        world.producers_left.load(Ordering::SeqCst).hash(&mut h);
        h.finish()
    }

    fn check(&self, world: &WaveQueueWorld, end: &RunEnd) -> Result<(), String> {
        match end {
            RunEnd::Panic { message } => return Err(format!("task panic: {message}")),
            RunEnd::Deadlock { blocked } => {
                return Err(format!(
                    "the queue must never deadlock — close wakes every \
                     blocked waiter: {blocked:?}"
                ));
            }
            RunEnd::Complete => {}
        }
        for (i, r) in world.ran.iter().enumerate() {
            let n = r.load(Ordering::SeqCst);
            if n != 1 {
                return Err(format!("job {i} executed {n} times (want exactly 1)"));
            }
        }
        if !world.queue.is_empty() {
            return Err(format!(
                "{} jobs left queued after the close-drain handshake",
                world.queue.len()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// 2PC coordinator crash
// ---------------------------------------------------------------------------

/// The world of the 2PC scenario: two partitions, a WAL-backed
/// coordinator, one transaction that crashes between phases and one that
/// races it to completion.
pub struct TpcWorld {
    /// The partitions.
    pub pm: Arc<PartitionMap>,
    /// The coordinator (decision log attached).
    pub coord: Coordinator,
    /// The coordinator's WAL.
    pub wal: Arc<Wal>,
    /// Backing storage of the WAL.
    pub probe: MemStorage,
    /// Prepared participants of the crashing transaction, kept so recovery
    /// can finish phase 2 after the run.
    pub crashed: Vec<(PartitionParticipant, Vec<(Key, Value)>)>,
    /// Phase-1 result of the crashing transaction (`None` until it ran).
    pub phase1: Mutex<Option<bool>>,
    /// Outcome of the racing transaction: (committed, records at return).
    pub raced: Mutex<Option<(bool, u64)>>,
}

/// A coordinator that crashes after phase 1 (txn 1) racing a full 2PC
/// commit (txn 2) that conflicts with it on one key. Every interleaving of
/// prepares, the decision append and phase-2 commits is explored; every
/// crash cut checks decision durability; and the post-run in-doubt
/// resolution must agree with whatever the log says.
pub struct TpcCoordinatorCrash;

/// Writes for the crashing transaction: one key on each partition.
fn crash_writes(pm: &PartitionMap) -> Vec<(Key, Value)> {
    let mut writes: Vec<(Key, Value)> = Vec::new();
    let mut covered: Vec<bool> = vec![false; pm.partitions().len()];
    let mut i = 0u64;
    while covered.iter().any(|c| !c) {
        let k = Key::indexed("w", i);
        let pid = pm.partition_of(&k).id;
        let idx = pm.partitions().iter().position(|p| p.id == pid).unwrap();
        if !covered[idx] {
            covered[idx] = true;
            writes.push((k, Value::Int(i as i64 + 1)));
        }
        i += 1;
    }
    writes.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
    writes
}

impl Scenario for TpcCoordinatorCrash {
    type World = TpcWorld;

    fn name(&self) -> String {
        "2pc/coordinator-crash".into()
    }

    fn build(&self) -> Arc<TpcWorld> {
        let pm = Arc::new(PartitionMap::new(2, LockPolicy::NoWait));
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        let wal = Arc::new(wal);
        let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::clone(&wal));
        let writes = crash_writes(&pm);
        let crashed: Vec<(PartitionParticipant, Vec<(Key, Value)>)> = pm
            .group_by_partition(writes.iter().map(|(k, _)| k))
            .into_iter()
            .map(|(pid, keys)| {
                let part = Arc::clone(pm.get(pid).expect("valid partition id"));
                let ws: Vec<(Key, Value)> = writes
                    .iter()
                    .filter(|(k, _)| keys.contains(k))
                    .cloned()
                    .collect();
                (PartitionParticipant::new(part), ws)
            })
            .collect();
        Arc::new(TpcWorld {
            pm,
            coord,
            wal,
            probe,
            crashed,
            phase1: Mutex::new(None),
            raced: Mutex::new(None),
        })
    }

    fn tasks(&self, world: &Arc<TpcWorld>) -> Vec<TaskFn> {
        let w1 = Arc::clone(world);
        let w2 = Arc::clone(world);
        vec![
            // The crashing coordinator: phase 1 only, then the task ends —
            // modelling a crash between the phases. Participants stay
            // prepared (locks held) until post-run resolution.
            Box::new(move || {
                let pw: Vec<ParticipantWrites<'_>> = w1
                    .crashed
                    .iter()
                    .map(|(p, ws)| (p as &dyn Participant, ws.as_slice()))
                    .collect();
                let ok = w1.coord.run_phase1(TxnId(1), &pw).is_ok();
                *w1.phase1.lock() = Some(ok);
            }),
            // The racing transaction: a full 2PC commit conflicting on the
            // crashing transaction's first key.
            Box::new(move || {
                let mut writes = crash_writes(&w2.pm);
                writes.truncate(1); // the shared, conflicting key
                writes[0].1 = Value::Int(77);
                let outcome = w2.coord.commit_writes(TxnId(2), &writes);
                let committed = matches!(outcome, TpcOutcome::Committed { .. });
                *w2.raced.lock() = Some((committed, w2.wal.stats().records));
            }),
        ]
    }

    fn fingerprint(&self, world: &TpcWorld) -> u64 {
        let mut h = DefaultHasher::new();
        world.probe.all_bytes().hash(&mut h);
        for p in world.pm.partitions() {
            p.locks.locked_keys().hash(&mut h);
            let mut snapshot = p.store.snapshot();
            snapshot.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
            for (k, v) in snapshot {
                k.as_str().hash(&mut h);
                format!("{:?}", v.value).hash(&mut h);
            }
        }
        format!("{:?} {:?}", *world.phase1.lock(), *world.raced.lock()).hash(&mut h);
        h.finish()
    }

    fn check(&self, world: &TpcWorld, end: &RunEnd) -> Result<(), String> {
        match end {
            RunEnd::Panic { message } => return Err(format!("task panic: {message}")),
            RunEnd::Deadlock { blocked } => {
                return Err(format!("2PC under NoWait must not deadlock: {blocked:?}"))
            }
            RunEnd::Complete => {}
        }
        world
            .wal
            .flush()
            .map_err(|e| format!("final flush failed: {e}"))?;
        let log = world.probe.all_bytes();
        let raced = world.raced.lock().expect("racing task finished");
        sweep(&log, |cut| {
            // The racing txn's acked commit implies its durable decision:
            // any cut containing the records present at its return must
            // contain the commit decision (possibly already expired by the
            // phase-2-complete record, which only ever follows it).
            let (committed, records_at_return) = raced;
            if (records_at_return as usize) <= cut.frames {
                match cut.oracle.tpc_all.get(&2) {
                    Some(&decision) if decision == committed => {}
                    Some(&decision) => {
                        return Err(format!(
                            "txn 2 returned {} but the durable decision says {}",
                            if committed { "commit" } else { "abort" },
                            if decision { "commit" } else { "abort" },
                        ))
                    }
                    None => {
                        return Err("txn 2 returned before its 2PC decision was durable".to_string())
                    }
                }
            }
            // Never contradicted: a cut without txn 1's decision record
            // presumes abort — legal only while no participant has entered
            // phase 2, which holds by construction (txn 1 never starts
            // phase 2) — and a cut *with* the decision must resolve to it.
            if let Some(&decision) = cut.oracle.tpc.get(&1) {
                let resolved = cut.report.tpc_decisions.iter().find(|(t, _)| t.0 == 1);
                if resolved.map(|(_, c)| *c) != Some(decision) {
                    return Err("recovery dropped txn 1's live decision record".to_string());
                }
            }
            Ok(())
        })?;

        // Post-crash resolution: a new coordinator epoch reads the durable
        // decision and finishes phase 2. The resolution must agree with
        // phase 1's outcome and leave no lock held anywhere.
        let phase1 = world.phase1.lock().expect("crashing task ran phase 1");
        let report = croesus_wal::recover(&log);
        let decision = report
            .tpc_decisions
            .iter()
            .find(|(t, _)| t.0 == 1)
            .map(|(_, c)| *c);
        if decision != Some(phase1) {
            return Err(format!(
                "phase 1 {} but the log's decision is {decision:?}",
                if phase1 { "committed" } else { "aborted" }
            ));
        }
        let outcome = Coordinator::resolve_in_doubt(
            decision,
            TxnId(1),
            world.crashed.iter().map(|(p, _)| p as &dyn Participant),
        );
        match (phase1, outcome) {
            (true, TpcOutcome::Committed { .. }) => {
                for (k, v) in world.crashed.iter().flat_map(|(_, ws)| ws) {
                    if world.pm.partition_of(k).store.get(k).as_deref() != Some(v) {
                        return Err(format!("resolved commit lost write {k}"));
                    }
                }
            }
            (false, TpcOutcome::Aborted { .. }) => {}
            (p1, out) => {
                return Err(format!(
                    "in-doubt resolution ({out:?}) contradicts phase 1 (ok={p1})"
                ))
            }
        }
        for p in world.pm.partitions() {
            if p.locks.locked_keys() != 0 {
                return Err(format!(
                    "partition {:?} leaked locks after resolution",
                    p.id
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pipelined WAL: appender / flusher / shipper interleavings
// ---------------------------------------------------------------------------

/// The world of the pipelined-WAL scenario: one pipelined writer whose
/// flusher is a *virtual task* (manual mode — no thread), its shared
/// in-memory device probe, its shipper, and the observations the monitor
/// and appender record for [`WalPipelineScenario::check`].
pub struct WalPipelineWorld {
    /// The pipelined writer under test.
    pub wal: Wal,
    /// Shared handle on the writer's device: `durable()` is what a crash
    /// would keep right now.
    pub probe: MemStorage,
    /// The publication side of the shipping contract.
    pub shipper: Arc<LogShipper>,
    /// `(requested LSN, boundary at ack)` for every `flush_lsn` return.
    pub acks: Mutex<Vec<(u64, u64)>>,
    /// `last_flushed_lsn` samples, in observation order (appender and
    /// monitor both contribute).
    pub boundaries: Mutex<Vec<u64>>,
    /// First shipped-⊆-durable breach the monitor observed, if any.
    pub ship_breach: Mutex<Option<String>>,
}

impl WalPipelineWorld {
    fn sample(&self) {
        self.boundaries.lock().push(self.wal.last_flushed_lsn());
        // Read the published side *first*: publication follows the sync,
        // so durable sampled second can only be larger — a transient
        // reordering here can never fake a breach.
        let shipped = self.shipper.shipped_len();
        let durable = self.probe.durable().len();
        if shipped > durable {
            let mut breach = self.ship_breach.lock();
            if breach.is_none() {
                *breach = Some(format!(
                    "shipping contract breach: shipped {shipped} bytes > durable {durable} bytes"
                ));
            }
        }
    }
}

/// The pipelined double-buffered WAL under the model checker.
///
/// Three virtual tasks share one writer: an **appender** logging two
/// commit points (group 1, so each seals a buffer — the second append's
/// seal exercises the LSN-boundary backpressure wait) and acking each
/// with `flush_lsn`; the **flusher**, running `flusher_step` until
/// shutdown — under the scheduler it parks on `wal.buffer.drain` like
/// the real thread; and a **monitor** sampling the boundary and the
/// shipped-vs-durable byte counts between explicit yield points. Every
/// interleaving of the `wal.buffer.*` yield, block and progress points
/// is explored. Invariants: no deadlock, `last_flushed_lsn` is monotone,
/// no `flush_lsn` ack below its requested LSN, shipped ⊆ durable at
/// every observation, and the final shipped image equals the durable
/// bytes.
///
/// With `mutate` set, the writer publishes each buffer *before* its
/// sync ([`Wal::mutate_publish_before_sync`]) — the deliberately wrong
/// order the shipping contract forbids. The checker must catch it with
/// a replayable trace (the mutation self-test).
pub struct WalPipelineScenario {
    /// Publish sealed buffers before their sync (the planted bug).
    pub mutate: bool,
}

/// The canonical instance; `mutate` plants the publish-before-sync bug.
#[must_use]
pub fn wal_pipeline(mutate: bool) -> WalPipelineScenario {
    WalPipelineScenario { mutate }
}

impl WalPipelineScenario {
    fn commit_record(txn: u64, key: &'static str, val: i64) -> croesus_wal::StageRecord {
        use croesus_wal::{StageFlags, StageRecord, WriteImage};
        StageRecord {
            txn: TxnId(txn),
            stage: 0,
            total: 1,
            flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::FINAL),
            reads: vec![],
            writes: vec![Key::new(key)],
            images: vec![WriteImage {
                key: Key::new(key),
                pre: None,
                post: Some(Arc::new(Value::Int(val))),
            }],
        }
    }
}

impl Scenario for WalPipelineScenario {
    type World = WalPipelineWorld;

    fn name(&self) -> String {
        if self.mutate {
            "wal/pipeline-publish-before-sync".into()
        } else {
            "wal/pipeline".into()
        }
    }

    fn build(&self) -> Arc<WalPipelineWorld> {
        let (wal, probe) = Wal::pipelined_in_memory(
            WalConfig::group(1),
            PipelineConfig {
                coalescer: None,
                manual_flusher: true,
            },
        );
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        if self.mutate {
            wal.mutate_publish_before_sync();
        }
        Arc::new(WalPipelineWorld {
            wal,
            probe,
            shipper,
            acks: Mutex::new(Vec::new()),
            boundaries: Mutex::new(Vec::new()),
            ship_breach: Mutex::new(None),
        })
    }

    fn tasks(&self, world: &Arc<WalPipelineWorld>) -> Vec<TaskFn> {
        let appender = {
            let w = Arc::clone(world);
            Box::new(move || {
                let l1 = w.wal.append_stage(Self::commit_record(1, "a", 1)).unwrap();
                // Group 1: the first commit sealed a buffer; this second
                // append's seal waits on the previous buffer's boundary
                // (`wal.buffer.backpressure`) — the double-buffer bound.
                let l2 = w.wal.append_stage(Self::commit_record(2, "b", 2)).unwrap();
                for lsn in [l1, l2] {
                    w.wal.flush_lsn(lsn).unwrap();
                    let boundary = w.wal.last_flushed_lsn();
                    w.acks.lock().push((lsn, boundary));
                    w.boundaries.lock().push(boundary);
                }
                w.wal.shutdown_flusher();
            }) as TaskFn
        };
        let flusher = {
            let w = Arc::clone(world);
            Box::new(move || while w.wal.flusher_step().expect("pipeline io") {}) as TaskFn
        };
        let monitor = {
            let w = Arc::clone(world);
            Box::new(move || {
                for _ in 0..3 {
                    w.sample();
                    croesus_store::sched::yield_point("mcheck.wal.monitor");
                }
                w.sample();
            }) as TaskFn
        };
        vec![appender, flusher, monitor]
    }

    fn fingerprint(&self, world: &WalPipelineWorld) -> u64 {
        let mut h = DefaultHasher::new();
        world.acks.lock().hash(&mut h);
        world.boundaries.lock().hash(&mut h);
        world.shipper.shipped_len().hash(&mut h);
        world.probe.durable().len().hash(&mut h);
        world.ship_breach.lock().is_some().hash(&mut h);
        h.finish()
    }

    fn check(&self, world: &WalPipelineWorld, end: &RunEnd) -> Result<(), String> {
        match end {
            RunEnd::Panic { message } => return Err(format!("task panic: {message}")),
            RunEnd::Deadlock { blocked } => {
                return Err(format!(
                    "the pipeline must never deadlock — shutdown wakes the                      flusher and every boundary waiter: {blocked:?}"
                ));
            }
            RunEnd::Complete => {}
        }
        if let Some(breach) = world.ship_breach.lock().as_ref() {
            return Err(breach.clone());
        }
        let boundaries = world.boundaries.lock();
        // Monotone within each observer; the appender's and the monitor's
        // samples interleave arbitrarily, but a *drop* between any two
        // appender-side observations would still surface here because the
        // vec is push-ordered per task and the boundary never decreases
        // globally: check the global sequence pairwise per observer is
        // subsumed by checking no sample undercuts a previous ack.
        for (requested, at_ack) in world.acks.lock().iter() {
            if at_ack < requested {
                return Err(format!(
                    "flush_lsn({requested}) acked at boundary {at_ack} —                      an ack below the flushed boundary"
                ));
            }
        }
        drop(boundaries);
        let shipped = world.shipper.image();
        let durable = world.probe.durable();
        if shipped != durable {
            return Err(format!(
                "final shipped image ({} bytes) != durable bytes ({}) after drain",
                shipped.len(),
                durable.len()
            ));
        }
        if world.wal.last_flushed_lsn() != world.wal.latest_lsn() {
            return Err("shutdown completed with an unflushed acked tail".into());
        }
        Ok(())
    }
}
