//! Crash-point checking: for a WAL byte stream produced by one schedule,
//! crash at **every frame boundary**, recover the prefix, and check it
//! against a dumb record-interpreting oracle plus the §4.4 recovery
//! contract (unfinalized ⇒ retracted + apologized).
//!
//! The oracle deliberately shares no code with `croesus_wal::recover`: it
//! applies decoded records to a `BTreeMap`, buffering a transaction's
//! images until its first commit point, exactly as the commit-point table
//! in DESIGN.md specifies.

use std::collections::{BTreeMap, BTreeSet};

use croesus_store::{KvStore, Value};
use croesus_txn::recovery::{recover_edge, RecoveredEdge};
use croesus_wal::{recover, FrameReader, RecoveryReport, WalRecord};

/// The prefix-interpreting oracle.
#[derive(Default, Clone)]
pub struct Oracle {
    /// Applied (committed) state.
    pub store: BTreeMap<String, Value>,
    /// txn → buffered (key, post-image) pairs awaiting a commit point.
    pub pending: BTreeMap<u64, Vec<(String, Option<Value>)>>,
    /// Transactions whose first commit point was replayed.
    pub initial: BTreeSet<u64>,
    /// Transactions whose final commit point was replayed.
    pub finalized: BTreeSet<u64>,
    /// txn → registered, unretracted apology entries.
    pub live_entries: BTreeMap<u64, usize>,
    /// 2PC decisions still live (decision seen, no matching end).
    pub tpc: BTreeMap<u64, bool>,
    /// Every 2PC decision ever seen in the prefix (never expired).
    pub tpc_all: BTreeMap<u64, bool>,
}

impl Oracle {
    /// Apply one decoded record.
    pub fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Stage(s) => {
                let pending = self.pending.entry(s.txn.0).or_default();
                for w in &s.images {
                    pending.push((w.key.as_str().to_string(), w.post.as_deref().cloned()));
                }
                if s.flags.commit_point() {
                    for (key, post) in std::mem::take(pending) {
                        match post {
                            Some(v) => {
                                self.store.insert(key, v);
                            }
                            None => {
                                self.store.remove(&key);
                            }
                        }
                    }
                    self.initial.insert(s.txn.0);
                    if s.flags.register() {
                        *self.live_entries.entry(s.txn.0).or_default() += 1;
                    }
                    if s.flags.is_final() {
                        self.finalized.insert(s.txn.0);
                    }
                }
            }
            WalRecord::Retract(r) => {
                for (key, value) in &r.restores {
                    match value {
                        Some(v) => {
                            self.store.insert(key.as_str().to_string(), (**v).clone());
                        }
                        None => {
                            self.store.remove(key.as_str());
                        }
                    }
                }
                self.live_entries.remove(&r.txn.0);
            }
            WalRecord::TpcDecision { txn, commit } => {
                self.tpc.insert(txn.0, *commit);
                self.tpc_all.insert(txn.0, *commit);
            }
            WalRecord::TpcEnd { txn } => {
                self.tpc.remove(&txn.0);
            }
            WalRecord::Checkpoint(_) | WalRecord::Settle => {}
        }
    }

    /// The transactions a recovering edge owes retractions for.
    #[must_use]
    pub fn expected_unfinalized(&self) -> BTreeSet<u64> {
        self.initial
            .iter()
            .filter(|t| {
                !self.finalized.contains(t) && self.live_entries.get(t).copied().unwrap_or(0) > 0
            })
            .copied()
            .collect()
    }
}

/// One crash point: the log truncated at a frame boundary, recovered both
/// raw and apology-aware, with the oracle's view of the same prefix.
pub struct CrashCut<'a> {
    /// Whole frames in the prefix.
    pub frames: usize,
    /// Byte offset of the cut.
    pub cut: usize,
    /// Raw replay of the prefix.
    pub report: &'a RecoveryReport,
    /// Apology-aware recovery of the prefix (retractions applied).
    pub edge: &'a RecoveredEdge,
    /// The oracle after the same records.
    pub oracle: &'a Oracle,
}

fn snapshot_of(store: &KvStore) -> BTreeMap<String, Value> {
    store
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), (*v.value).clone()))
        .collect()
}

/// Crash at every frame boundary of `log`; at each cut, check prefix
/// consistency (oracle equality, unfinalized set, apology coverage) and
/// then the scenario-specific `extra` predicate. The first failure is
/// returned with the cut position baked into the message.
pub fn sweep(
    log: &[u8],
    mut extra: impl FnMut(&CrashCut<'_>) -> Result<(), String>,
) -> Result<(), String> {
    let mut boundaries = vec![0usize];
    {
        let mut reader = FrameReader::new(log);
        while reader.next().is_some() {
            boundaries.push(reader.offset());
        }
        if *boundaries.last().unwrap() != log.len() {
            return Err(format!(
                "the schedule's own log must parse completely: valid prefix {} of {} bytes",
                boundaries.last().unwrap(),
                log.len()
            ));
        }
    }
    let mut oracle = Oracle::default();
    let mut oracle_at: Vec<Oracle> = vec![oracle.clone()];
    {
        let reader = FrameReader::new(log);
        for payload in reader {
            let record =
                WalRecord::decode(payload).map_err(|e| format!("undecodable record: {e:?}"))?;
            oracle.apply(&record);
            oracle_at.push(oracle.clone());
        }
    }

    for (frames, &cut) in boundaries.iter().enumerate() {
        let at = |msg: String| format!("crash at frame {frames} (byte {cut}): {msg}");
        let report = recover(&log[..cut]);
        if report.frames != frames {
            return Err(at(format!("recovery replayed {} frames", report.frames)));
        }
        if report.torn_tail {
            return Err(at("boundary cut misreported as torn".into()));
        }
        let expected = &oracle_at[frames];
        let got = snapshot_of(&report.store);
        if got != expected.store {
            return Err(at(format!(
                "store mismatch: recovered {got:?}, oracle {:?}",
                expected.store
            )));
        }
        let unfinalized: BTreeSet<u64> = report.unfinalized.iter().map(|t| t.0).collect();
        if unfinalized != expected.expected_unfinalized() {
            return Err(at(format!(
                "unfinalized mismatch: recovered {unfinalized:?}, oracle {:?}",
                expected.expected_unfinalized()
            )));
        }
        let tpc: BTreeMap<u64, bool> = report
            .tpc_decisions
            .iter()
            .map(|(t, c)| (t.0, *c))
            .collect();
        if tpc != expected.tpc {
            return Err(at(format!(
                "2PC decision mismatch: recovered {tpc:?}, oracle {:?}",
                expected.tpc
            )));
        }

        // Apology-aware recovery on the same prefix: every unfinalized
        // transaction must end up retracted (not live) and apologized for.
        let edge = recover_edge(&log[..cut]);
        let apologized: BTreeSet<u64> = edge.apologies_owed().iter().map(|a| a.txn.0).collect();
        for txn in &unfinalized {
            if edge.apologies.is_live(croesus_store::TxnId(*txn)) {
                return Err(at(format!(
                    "unfinalized txn {txn} still live after recovery"
                )));
            }
            if !apologized.contains(txn) {
                return Err(at(format!("txn {txn} owes its users an apology")));
            }
        }
        // Apologies ⊇ everything recovery retracted (cascades included).
        for r in &edge.retractions {
            for t in &r.retracted {
                if !apologized.contains(&t.0) {
                    return Err(at(format!(
                        "cascade-retracted txn {} lacks an apology",
                        t.0
                    )));
                }
            }
        }

        extra(&CrashCut {
            frames,
            cut,
            report: &report,
            edge: &edge,
            oracle: expected,
        })
        .map_err(at)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::TxnId;
    use croesus_wal::{StageFlags, StageRecord, Wal, WalConfig, WriteImage};
    use std::sync::Arc;

    fn stage(txn: u64, key: &str, val: i64, flags: u8) -> StageRecord {
        StageRecord {
            txn: TxnId(txn),
            stage: 0,
            total: 2,
            flags: StageFlags(flags),
            reads: vec![],
            writes: vec![key.into()],
            images: vec![WriteImage {
                key: key.into(),
                pre: None,
                post: Some(Arc::new(Value::Int(val))),
            }],
        }
    }

    #[test]
    fn sweep_accepts_a_clean_log_and_rejects_nothing() {
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage(
            1,
            "x",
            7,
            StageFlags::COMMIT_POINT | StageFlags::REGISTER,
        ))
        .unwrap();
        wal.append_stage(stage(
            1,
            "x",
            8,
            StageFlags::COMMIT_POINT | StageFlags::FINAL,
        ))
        .unwrap();
        let mut cuts = 0;
        sweep(&probe.all_bytes(), |cut| {
            cuts += 1;
            if cut.frames == 1 {
                assert_eq!(cut.oracle.expected_unfinalized(), BTreeSet::from([1]));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(cuts, 3, "empty prefix + two boundaries");
    }

    #[test]
    fn sweep_propagates_extra_check_failures_with_cut_position() {
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage(3, "k", 1, StageFlags::COMMIT_POINT))
            .unwrap();
        let err = sweep(&probe.all_bytes(), |cut| {
            if cut.frames == 1 {
                Err("scenario invariant failed".into())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(err.contains("crash at frame 1"), "got: {err}");
        assert!(err.contains("scenario invariant failed"));
    }
}
