//! Schedule-space exploration: exhaustive DFS with state-hash pruning,
//! falling back to seeded random sampling when the space is too large.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use croesus_sim::DetRng;

use crate::scheduler::{advance, run_schedule, Mode, RunEnd, SchedStats, TaskFn, Trace};

/// What to explore and how hard.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// DFS budget: stop enumerating (and fall back to sampling) after this
    /// many schedules.
    pub max_schedules: usize,
    /// Sampled schedules to run when the DFS did not exhaust the space.
    pub samples: usize,
    /// Seed for the sampling RNG (each sample forks its own stream).
    pub seed: u64,
    /// Stop after this many violations (1 = first counterexample wins).
    pub max_violations: usize,
    /// Collapse states already seen (hash of world + task positions).
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 50_000,
            samples: 500,
            seed: 0xC805_B10C,
            max_violations: 1,
            prune: true,
        }
    }
}

impl Config {
    /// A small budget for CI smoke runs: enough DFS for 2-txn scenarios,
    /// a thin sampling tail.
    #[must_use]
    pub fn smoke() -> Self {
        Config {
            max_schedules: 20_000,
            samples: 100,
            ..Config::default()
        }
    }
}

/// An invariant violation with the schedule that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Replay this trace through [`replay`] to reproduce the violation.
    pub trace: Trace,
    /// What went wrong.
    pub message: String,
}

/// The outcome of exploring one scenario.
#[derive(Debug, Default)]
pub struct Report {
    /// Scenario name.
    pub name: String,
    /// Schedules actually run (DFS + sampled).
    pub schedules: u64,
    /// Whether the DFS enumerated the whole space within budget.
    pub exhaustive: bool,
    /// Decision-point counters.
    pub stats: SchedStats,
    /// Schedules that ran every task to completion.
    pub completes: u64,
    /// Schedules that deadlocked.
    pub deadlocks: u64,
    /// Schedules that panicked inside the system under test.
    pub panics: u64,
    /// Invariant violations found (with replayable traces).
    pub violations: Vec<Violation>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl Report {
    /// Schedules per second, for the bench report.
    #[must_use]
    pub fn schedules_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.schedules as f64 / secs
        } else {
            0.0
        }
    }
}

/// A model-checking scenario: builds a fresh world per schedule, describes
/// the tasks that race over it, fingerprints it for pruning, and checks
/// the invariants once the schedule ends.
pub trait Scenario {
    /// The shared state the tasks race over.
    type World: Send + Sync + 'static;

    /// Scenario name (for reports).
    fn name(&self) -> String;

    /// A fresh world. Called once per schedule — state never leaks between
    /// schedules, which is what makes decision-list replay sound.
    fn build(&self) -> Arc<Self::World>;

    /// The racing tasks, each capturing its own `Arc` of the world.
    fn tasks(&self, world: &Arc<Self::World>) -> Vec<TaskFn>;

    /// Hash of everything that determines future behaviour (store
    /// contents, log bytes, history). Task positions are hashed by the
    /// scheduler itself.
    fn fingerprint(&self, world: &Self::World) -> u64;

    /// Check invariants after the schedule ended. `Err` is a violation.
    fn check(&self, world: &Self::World, end: &RunEnd) -> Result<(), String>;
}

fn run_one<S: Scenario>(
    scenario: &S,
    decisions: &mut Vec<crate::scheduler::Decision>,
    mode: Mode<'_>,
    report: &mut Report,
) -> (Arc<S::World>, RunEnd) {
    let world = scenario.build();
    let tasks = scenario.tasks(&world);
    let fp_world = Arc::clone(&world);
    let end = {
        let mut fingerprint = || scenario.fingerprint(&fp_world);
        run_schedule(tasks, decisions, mode, &mut fingerprint, &mut report.stats)
    };
    report.schedules += 1;
    match &end {
        RunEnd::Complete => report.completes += 1,
        RunEnd::Deadlock { .. } => report.deadlocks += 1,
        RunEnd::Panic { .. } => report.panics += 1,
    }
    (world, end)
}

/// Explore a scenario: exhaustive DFS first, seeded sampling if the DFS
/// budget runs out. Stops early at `max_violations`.
pub fn explore<S: Scenario>(scenario: &S, config: &Config) -> Report {
    let start = Instant::now();
    let mut report = Report {
        name: scenario.name(),
        ..Report::default()
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut decisions = Vec::new();

    loop {
        if report.schedules as usize >= config.max_schedules {
            break;
        }
        let (world, end) = run_one(
            scenario,
            &mut decisions,
            Mode::Dfs {
                seen: &mut seen,
                prune: config.prune,
            },
            &mut report,
        );
        if let Err(message) = scenario.check(&world, &end) {
            report.violations.push(Violation {
                trace: Trace {
                    seed: None,
                    decisions: decisions.clone(),
                },
                message,
            });
            if report.violations.len() >= config.max_violations {
                report.elapsed = start.elapsed();
                return report;
            }
        }
        if !advance(&mut decisions) {
            report.exhaustive = true;
            break;
        }
    }

    if !report.exhaustive {
        // The space was too large to enumerate: sample seeded random
        // schedules instead. Each sample forks its own RNG stream so a
        // violating sample is replayable from (seed, stream) alone.
        let base = DetRng::new(config.seed);
        for stream in 0..config.samples as u64 {
            let mut rng = base.fork(stream);
            let mut decisions = Vec::new();
            let (world, end) = run_one(
                scenario,
                &mut decisions,
                Mode::Sample { rng: &mut rng },
                &mut report,
            );
            if let Err(message) = scenario.check(&world, &end) {
                report.violations.push(Violation {
                    trace: Trace {
                        seed: Some(config.seed),
                        decisions,
                    },
                    message,
                });
                if report.violations.len() >= config.max_violations {
                    break;
                }
            }
        }
    }

    report.elapsed = start.elapsed();
    report
}

/// Replay a recorded trace against a fresh world; returns the run end and
/// the invariant check result. The decision list alone pins the execution.
pub fn replay<S: Scenario>(scenario: &S, trace: &Trace) -> (RunEnd, Result<(), String>) {
    let mut report = Report::default();
    let mut decisions = trace.decisions.clone();
    let (world, end) = run_one(scenario, &mut decisions, Mode::Replay, &mut report);
    let check = scenario.check(&world, &end);
    (end, check)
}
