//! Deterministic-scheduler model checking for Croesus: explore **every
//! interleaving** of small protocol scenarios and **every crash point**
//! inside each interleaving, checking the DESIGN.md commit-point table and
//! the shipping/recovery contracts as executable invariants.
//!
//! The checker is loom-shaped but home-grown (no new dependencies):
//!
//! * [`scheduler`] — virtual tasks (one OS thread each) hand control to a
//!   driver at instrumented yield points (`croesus_store::sched`, enabled
//!   by the `mcheck` feature on the store/wal/txn crates). Only one task
//!   runs between points, so a schedule **is** its decision list; replays
//!   are exact.
//! * [`mod@explore`] — exhaustive DFS over the decision tree with state-hash
//!   pruning, falling back to seeded random sampling when the space
//!   outgrows the budget. Violations carry a replayable [`Trace`]
//!   (`seed` + decision list).
//! * [`crash`] — within a schedule's WAL byte stream, crash at every
//!   frame boundary: recover the prefix (raw and apology-aware), compare
//!   with an independent record-interpreting [`Oracle`], and enforce the
//!   §4.4 contract (unfinalized ⇒ retracted + apologized).
//! * [`scenarios`] — MS-SR / MS-IA / staged scripts over the real
//!   executors, the MS-SR commit-point mutation self-test, a Block-policy
//!   deadlock demo, and a 2PC coordinator-crash scenario.
//!
//! Production builds are untouched: the instrumentation compiles to
//! nothing unless the `mcheck` feature is enabled, and only this crate
//! (a dev-dependency of the workspace root) enables it.

pub mod crash;
pub mod explore;
pub mod scenarios;
pub mod scheduler;

pub use crash::{sweep, CrashCut, Oracle};
pub use explore::{explore, replay, Config, Report, Scenario, Violation};
pub use scenarios::{
    ms_sr_block_deadlock, ms_sr_commit_point, retract_self, three_txn_hot_key, two_txn_two_stage,
    wal_pipeline, wave_queue, Ack, AnyProtocol, CutCheck, ProtoWorld, ProtocolScenario, StageOp,
    StageScript, TpcCoordinatorCrash, TpcWorld, TxnScript, WalPipelineScenario, WalPipelineWorld,
    WaveQueueScenario, WaveQueueWorld,
};
pub use scheduler::{advance, run_schedule, Decision, Mode, RunEnd, SchedStats, TaskFn, Trace};
