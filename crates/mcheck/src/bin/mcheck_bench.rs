//! Model-checker throughput snapshot: runs the standard scenario suite
//! and reports schedules/sec, decision points, states pruned, and per-
//! scenario interleaving counts.
//!
//! Usage:
//!
//! ```text
//! cargo run -p croesus-mcheck --release --bin mcheck_bench [-- --quick] [--merge <BENCH_PRn.json>]
//! ```
//!
//! With `--merge <path>` the `"mcheck"` section is spliced into an
//! existing perf snapshot written by `perf_json` (and its `"pr"` field is
//! bumped to 7); without it, the section alone goes to stdout.

use croesus_mcheck::{
    explore, ms_sr_block_deadlock, ms_sr_commit_point, retract_self, three_txn_hot_key,
    two_txn_two_stage, Config, Report, Scenario, TpcCoordinatorCrash,
};
use croesus_txn::ProtocolKind;

fn run<S: Scenario>(scenario: &S, config: &Config, out: &mut Vec<Report>) {
    eprintln!("exploring {}...", scenario.name());
    out.push(explore(scenario, config));
}

fn section(reports: &[Report]) -> String {
    let schedules: u64 = reports.iter().map(|r| r.schedules).sum();
    let decisions: u64 = reports.iter().map(|r| r.stats.decision_points).sum();
    let pruned: u64 = reports.iter().map(|r| r.stats.pruned_points).sum();
    let elapsed: f64 = reports.iter().map(|r| r.elapsed.as_secs_f64()).sum();
    let rate = if elapsed > 0.0 {
        schedules as f64 / elapsed
    } else {
        0.0
    };
    let rows = reports
        .iter()
        .map(|r| {
            format!(
                "      {{\"name\": \"{}\", \"schedules\": {}, \"exhaustive\": {}, \
                 \"completes\": {}, \"deadlocks\": {}, \"violations\": {}, \
                 \"decision_points\": {}, \"pruned_points\": {}, \
                 \"schedules_per_sec\": {:.0}}}",
                r.name,
                r.schedules,
                r.exhaustive,
                r.completes,
                r.deadlocks,
                r.violations.len(),
                r.stats.decision_points,
                r.stats.pruned_points,
                r.schedules_per_sec(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        r#""mcheck": {{
    "note": "PR 7 deterministic-scheduler model checker: each scenario's schedule count is its explored interleavings (exhaustive=true means the whole space, pruned via state hashing); the instrumentation is behind the mcheck cargo feature, so none of the numbers above this section run any of it",
    "totals": {{
      "schedules": {schedules},
      "decision_points": {decisions},
      "pruned_points": {pruned},
      "elapsed_sec": {elapsed:.3},
      "schedules_per_sec": {rate:.0}
    }},
    "scenarios": [
{rows}
    ]
  }}"#
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let merge = args
        .iter()
        .position(|a| a == "--merge")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let config = if quick {
        Config::smoke()
    } else {
        Config::default()
    };
    // The sampled scenario gets a deliberately small DFS budget so the
    // bench always exercises the sampling fallback too.
    let sampled = Config {
        max_schedules: 200,
        samples: if quick { 50 } else { 200 },
        ..config
    };

    let mut reports = Vec::new();
    run(
        &two_txn_two_stage(ProtocolKind::MsSr),
        &config,
        &mut reports,
    );
    run(
        &two_txn_two_stage(ProtocolKind::MsIa),
        &config,
        &mut reports,
    );
    run(
        &two_txn_two_stage(ProtocolKind::Staged),
        &config,
        &mut reports,
    );
    run(&retract_self(ProtocolKind::MsIa), &config, &mut reports);
    run(&ms_sr_block_deadlock(), &config, &mut reports);
    run(&ms_sr_commit_point(false), &config, &mut reports);
    run(&TpcCoordinatorCrash, &config, &mut reports);
    run(
        &three_txn_hot_key(ProtocolKind::MsIa),
        &sampled,
        &mut reports,
    );

    for r in &reports {
        if !r.violations.is_empty() {
            eprintln!(
                "error: {} found a violation on a clean build: {}",
                r.name, r.violations[0].message
            );
            std::process::exit(1);
        }
    }

    let section = section(&reports);
    match merge {
        Some(path) => {
            let base = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let Some(end) = base.rfind('}') else {
                eprintln!("error: {path} does not look like a JSON object");
                std::process::exit(1);
            };
            let merged = format!("{},\n  {}\n}}\n", base[..end].trim_end(), section).replacen(
                "\"pr\": 3",
                "\"pr\": 7",
                1,
            );
            if let Err(e) = std::fs::write(&path, &merged) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("merged mcheck section into {path}");
        }
        None => println!("{{\n  {section}\n}}"),
    }
}
