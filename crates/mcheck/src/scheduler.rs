//! The deterministic scheduler: virtual tasks on real threads, lockstep
//! turn handoff.
//!
//! Each virtual task runs on its own OS thread, but at most one task
//! executes at a time: every instrumented point
//! ([`croesus_store::sched::yield_point`] and friends) parks the task and
//! hands the turn back to the driver, which picks the next task to run.
//! The sequence of picks — one [`Decision`] per point where more than one
//! task was ready — fully determines the execution, so a schedule is a
//! plain decision list that can be replayed, minimized, or enumerated.
//!
//! Threads are freshly spawned per schedule and the world is rebuilt from
//! scratch, so replaying a decision prefix is stateless: same scenario +
//! same decisions ⇒ same execution (asserted at replay time).

use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::thread;

use croesus_sim::DetRng;
use croesus_store::sched::{self, SchedHook};

/// A task body: runs to completion under the scheduler's control.
pub type TaskFn = Box<dyn FnOnce() + Send + 'static>;

/// One scheduling choice: at a point where `arity` continuations were
/// considered branch-worthy, continuation `chosen` was taken. (`arity` is
/// 1 at pruned or forced points — the DFS will not branch there.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Index into the ready-task list at this point.
    pub chosen: usize,
    /// How many alternatives the DFS may still try here.
    pub arity: usize,
}

/// A replayable schedule: the sampling seed that produced it (if any) and
/// the exact decision list. `Display` prints the compact
/// `seed=…/decisions=[…]` form quoted in violation reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Seed of the sampling RNG, `None` for DFS-discovered schedules.
    pub seed: Option<u64>,
    /// The decision list, in schedule order.
    pub decisions: Vec<Decision>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            Some(s) => write!(f, "seed={s:#x} ")?,
            None => write!(f, "dfs ")?,
        }
        write!(f, "decisions=[")?;
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}/{}", d.chosen, d.arity)?;
        }
        write!(f, "]")
    }
}

/// How one schedule ended.
#[derive(Clone, Debug)]
pub enum RunEnd {
    /// Every task ran to completion.
    Complete,
    /// No task could make progress: each live task sat at a block point.
    Deadlock {
        /// `task index @ label` for every blocked task.
        blocked: Vec<String>,
    },
    /// A task panicked (an assertion inside the system under test).
    Panic {
        /// The panic payload, stringified.
        message: String,
    },
}

/// Counters accumulated across schedules.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Points where more than one task was ready (branching opportunities).
    pub decision_points: u64,
    /// Branching points collapsed because the state hash was already seen.
    pub pruned_points: u64,
}

/// How the driver picks at decision points beyond the replayed prefix.
pub enum Mode<'a> {
    /// Depth-first enumeration: first choice at new points, consulting the
    /// seen-state set to avoid re-branching on converged states.
    Dfs {
        /// State hashes already expanded (shared across the whole search).
        seen: &'a mut HashSet<u64>,
        /// Whether to collapse converged states at all.
        prune: bool,
    },
    /// Uniform random choice at every point (seeded, replayable).
    Sample {
        /// The schedule's private RNG stream.
        rng: &'a mut DetRng,
    },
    /// Follow the decision list exactly (counterexample replay).
    Replay,
}

const DRIVER: usize = usize::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Ready,
    Running,
    Blocked,
    Done,
}

struct State {
    /// Whose turn it is: `DRIVER` or a task index.
    turn: usize,
    status: Vec<Status>,
    /// Last label each task stopped at (for deadlock reports).
    labels: Vec<&'static str>,
    /// Instrumented points each task has passed — its virtual program
    /// counter, part of the pruning hash.
    yields: Vec<u32>,
    /// Set when the driver abandons the run; parked tasks unwind.
    aborting: bool,
    /// First real task panic, if any.
    panic: Option<String>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// Sentinel panic payload used to unwind tasks parked at a scheduling
/// point when the driver abandons the run. Never reported.
struct AbortToken;

/// Tasks unwound on abandonment poison the state mutex; the scheduler's
/// invariants don't depend on it, so recover the guard.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait_state<'a>(shared: &'a Shared, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    shared
        .cv
        .wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Set on task threads so the process-wide panic hook stays silent for
    /// their (expected, captured) panics.
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static PANIC_HOOK: Once = Once::new();

fn install_quiet_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET.with(std::cell::Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

/// The per-task side of the handoff: installed as the thread's
/// [`SchedHook`], it parks the task at every instrumented point until the
/// driver hands the turn back.
struct TaskHook {
    shared: Arc<Shared>,
    id: usize,
}

impl TaskHook {
    fn hand_to_driver(&self, new_status: Status, label: &'static str) {
        let mut st = lock_state(&self.shared);
        st.status[self.id] = new_status;
        st.labels[self.id] = label;
        st.yields[self.id] += 1;
        st.turn = DRIVER;
        self.shared.cv.notify_all();
        while st.turn != self.id {
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            st = wait_state(&self.shared, st);
        }
        st.status[self.id] = Status::Running;
    }
}

impl SchedHook for TaskHook {
    fn yield_point(&self, label: &'static str) {
        self.hand_to_driver(Status::Ready, label);
    }

    fn block_point(&self, label: &'static str) {
        self.hand_to_driver(Status::Blocked, label);
    }

    fn progress(&self, _label: &'static str) {
        // A resource was released: blocked tasks may be schedulable again.
        // The releasing task keeps running (no turn change).
        let mut st = lock_state(&self.shared);
        for s in st.status.iter_mut() {
            if *s == Status::Blocked {
                *s = Status::Ready;
            }
        }
    }
}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn task_main(shared: Arc<Shared>, id: usize, f: TaskFn) {
    install_quiet_panic_hook();
    QUIET.with(|q| q.set(true));
    // Wait for the first turn: even a task's first instruction runs only
    // when the driver picks it.
    {
        let mut st = lock_state(&shared);
        while st.turn != id {
            if st.aborting {
                st.status[id] = Status::Done;
                return;
            }
            st = wait_state(&shared, st);
        }
        st.status[id] = Status::Running;
    }
    sched::install(Arc::new(TaskHook {
        shared: Arc::clone(&shared),
        id,
    }));
    let result = catch_unwind(AssertUnwindSafe(f));
    sched::uninstall();
    let mut st = lock_state(&shared);
    if let Err(payload) = result {
        if !payload.is::<AbortToken>() && st.panic.is_none() {
            st.panic = Some(format!("task {id}: {}", payload_message(payload)));
        }
    }
    st.status[id] = Status::Done;
    st.turn = DRIVER;
    shared.cv.notify_all();
}

/// Run one schedule to its end.
///
/// `decisions` is both input and output: the prefix already present is
/// replayed verbatim (the DFS backtracking contract), and every decision
/// point past it appends a new entry according to `mode`. `fingerprint`
/// hashes the world (store, log bytes, history) for state pruning; it runs
/// with every task parked.
pub fn run_schedule(
    tasks: Vec<TaskFn>,
    decisions: &mut Vec<Decision>,
    mut mode: Mode<'_>,
    fingerprint: &mut dyn FnMut() -> u64,
    stats: &mut SchedStats,
) -> RunEnd {
    let n = tasks.len();
    assert!(n > 0, "a schedule needs at least one task");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            turn: DRIVER,
            status: vec![Status::Ready; n],
            labels: vec!["start"; n],
            yields: vec![0; n],
            aborting: false,
            panic: None,
        }),
        cv: Condvar::new(),
    });
    let handles: Vec<_> = tasks
        .into_iter()
        .enumerate()
        .map(|(id, f)| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("mcheck-task-{id}"))
                .spawn(move || task_main(shared, id, f))
                .expect("spawn mcheck task thread")
        })
        .collect();

    let mut depth = 0usize;
    let end = loop {
        let mut st = lock_state(&shared);
        while st.turn != DRIVER {
            st = wait_state(&shared, st);
        }
        if let Some(message) = st.panic.take() {
            break RunEnd::Panic { message };
        }
        let ready: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.status.iter().all(|s| *s == Status::Done) {
                break RunEnd::Complete;
            }
            let blocked = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Blocked)
                .map(|(i, _)| format!("task {i} @ {}", st.labels[i]))
                .collect();
            break RunEnd::Deadlock { blocked };
        }

        let chosen = if depth < decisions.len() {
            // Replaying a prefix: the execution must be deterministic.
            let d = decisions[depth];
            assert!(
                d.chosen < ready.len(),
                "non-deterministic replay: decision {depth} chose {} of {} ready tasks",
                d.chosen,
                ready.len()
            );
            d.chosen
        } else {
            if ready.len() > 1 {
                stats.decision_points += 1;
            }
            let (chosen, arity) = match &mut mode {
                Mode::Dfs { seen, prune } => {
                    let arity = if ready.len() > 1 && *prune {
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        use std::hash::{Hash, Hasher};
                        fingerprint().hash(&mut h);
                        for i in 0..n {
                            (st.status[i] as u8, st.labels[i], st.yields[i]).hash(&mut h);
                        }
                        if seen.insert(h.finish()) {
                            ready.len()
                        } else {
                            stats.pruned_points += 1;
                            1
                        }
                    } else {
                        ready.len()
                    };
                    (0, arity)
                }
                Mode::Sample { rng } => (rng.index(ready.len()), ready.len()),
                Mode::Replay => (0, 1),
            };
            decisions.push(Decision { chosen, arity });
            chosen
        };

        st.turn = ready[chosen];
        depth += 1;
        shared.cv.notify_all();
    };

    // Abandon whatever is still parked and reap the threads.
    {
        let mut st = lock_state(&shared);
        st.aborting = true;
        shared.cv.notify_all();
    }
    for h in handles {
        let _ = h.join();
    }
    end
}

/// DFS backtracking: bump the deepest decision that still has an untried
/// alternative and drop everything after it. Returns `false` when the
/// whole space is exhausted.
pub fn advance(decisions: &mut Vec<Decision>) -> bool {
    while let Some(d) = decisions.last_mut() {
        if d.chosen + 1 < d.arity {
            d.chosen += 1;
            return true;
        }
        decisions.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Two tasks, each yielding twice: the DFS must enumerate every
    /// interleaving of their yield points — C(4,2) = 6 schedules.
    #[test]
    fn dfs_enumerates_all_interleavings() {
        let mut decisions = Vec::new();
        let mut seen = HashSet::new();
        let mut stats = SchedStats::default();
        let mut orders = HashSet::new();
        loop {
            let order = Arc::new(Mutex::new(Vec::new()));
            let tasks: Vec<TaskFn> = (0..2u8)
                .map(|t| {
                    let order = Arc::clone(&order);
                    Box::new(move || {
                        for step in 0..2u8 {
                            order.lock().unwrap().push((t, step));
                            croesus_store::sched::yield_point(if t == 0 { "a" } else { "b" });
                        }
                    }) as TaskFn
                })
                .collect();
            let end = run_schedule(
                tasks,
                &mut decisions,
                Mode::Dfs {
                    seen: &mut seen,
                    prune: false,
                },
                &mut || 0,
                &mut stats,
            );
            assert!(matches!(end, RunEnd::Complete));
            orders.insert(order.lock().unwrap().clone());
            if !advance(&mut decisions) {
                break;
            }
        }
        assert_eq!(orders.len(), 6, "C(4,2) interleavings of 2×2 yields");
    }

    /// A replayed decision list reproduces the exact same execution.
    #[test]
    fn replay_is_deterministic() {
        let run = |decisions: &mut Vec<Decision>, mode_seed: Option<u64>| -> Vec<(u8, u8)> {
            let order = Arc::new(Mutex::new(Vec::new()));
            let tasks: Vec<TaskFn> = (0..3u8)
                .map(|t| {
                    let order = Arc::clone(&order);
                    Box::new(move || {
                        for step in 0..2u8 {
                            order.lock().unwrap().push((t, step));
                            croesus_store::sched::yield_point("step");
                        }
                    }) as TaskFn
                })
                .collect();
            let mut stats = SchedStats::default();
            let end = match mode_seed {
                Some(seed) => {
                    let mut rng = DetRng::new(seed);
                    run_schedule(
                        tasks,
                        decisions,
                        Mode::Sample { rng: &mut rng },
                        &mut || 0,
                        &mut stats,
                    )
                }
                None => run_schedule(tasks, decisions, Mode::Replay, &mut || 0, &mut stats),
            };
            assert!(matches!(end, RunEnd::Complete));
            let v = order.lock().unwrap().clone();
            v
        };
        let mut decisions = Vec::new();
        let sampled = run(&mut decisions, Some(0xDECADE));
        let replayed = run(&mut decisions.clone(), None);
        assert_eq!(sampled, replayed);
    }

    /// Two tasks blocked with nobody to wake them is reported as deadlock.
    #[test]
    fn all_blocked_is_a_deadlock() {
        let mut decisions = Vec::new();
        let mut stats = SchedStats::default();
        let tasks: Vec<TaskFn> = (0..2)
            .map(|_| {
                Box::new(|| {
                    croesus_store::sched::block_point("stuck.forever");
                }) as TaskFn
            })
            .collect();
        let end = run_schedule(tasks, &mut decisions, Mode::Replay, &mut || 0, &mut stats);
        match end {
            RunEnd::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked[0].contains("stuck.forever"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// A task panic is captured (not printed) and ends the schedule; the
    /// sibling task parked at a yield point is unwound cleanly.
    #[test]
    fn task_panic_is_captured_and_run_abandoned() {
        let mut decisions = Vec::new();
        let mut stats = SchedStats::default();
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let tasks: Vec<TaskFn> = vec![
            Box::new(|| panic!("invariant broken: the model caught it")),
            Box::new(move || {
                croesus_store::sched::yield_point("parked");
                // Unreachable under decision list [0,...]: the panic ends
                // the run while this task is parked.
                fin.fetch_add(1, Ordering::Relaxed);
            }),
        ];
        let end = run_schedule(tasks, &mut decisions, Mode::Replay, &mut || 0, &mut stats);
        match end {
            RunEnd::Panic { message } => {
                assert!(message.contains("invariant broken"), "got: {message}")
            }
            other => panic!("expected panic, got {other:?}"),
        }
    }

    #[test]
    fn advance_walks_the_odometer() {
        let mut d = vec![
            Decision {
                chosen: 0,
                arity: 2,
            },
            Decision {
                chosen: 1,
                arity: 2,
            },
        ];
        assert!(advance(&mut d)); // inner exhausted → bump outer
        assert_eq!(
            d,
            vec![Decision {
                chosen: 1,
                arity: 2
            }]
        );
        assert!(!advance(&mut d), "all alternatives spent");
    }

    #[test]
    fn trace_displays_compactly() {
        let t = Trace {
            seed: Some(0xBEEF),
            decisions: vec![
                Decision {
                    chosen: 1,
                    arity: 3,
                },
                Decision {
                    chosen: 0,
                    arity: 1,
                },
            ],
        };
        assert_eq!(t.to_string(), "seed=0xbeef decisions=[1/3 0/1]");
    }
}
