//! Deterministic discrete-event simulation substrate for Croesus.
//!
//! The Croesus paper evaluates a distributed edge-cloud deployment on AWS.
//! This crate provides the pieces that let the rest of the workspace
//! reproduce those experiments deterministically on a single machine:
//!
//! * [`time`] — a virtual clock ([`SimTime`]) with microsecond resolution
//!   and a duration type ([`SimDuration`]) with convenient constructors.
//! * [`kernel`] — a generic discrete-event [`Simulator`] that owns a world
//!   state and an event queue; handlers mutate the world and schedule
//!   further events.
//! * [`rng`] — a seedable, forkable random number generator
//!   ([`DetRng`]) so every sampled quantity is a pure function of
//!   `(seed, stream)`.
//! * [`dist`] — the distributions used across the workspace (normal,
//!   exponential, Kumaraswamy, Zipf) implemented from first principles on
//!   top of [`DetRng`].
//! * [`stats`] — summaries (mean/stddev/percentiles), online accumulation
//!   and fixed-width histograms for reporting experiment results.
//! * [`fault`] — replayable fault schedules ([`FaultPlan`]) and the
//!   [`FaultInjector`] that drains them, so chaos runs against the edge
//!   fleet are as deterministic as the fault-free ones.

pub mod dist;
pub mod fault;
pub mod kernel;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Distribution, Exponential, Kumaraswamy, Normal, Zipf};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use kernel::{Scheduler, Simulator};
pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats, PrecisionRecall, Summary};
pub use time::{SimDuration, SimTime};
