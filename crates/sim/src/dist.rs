//! Probability distributions used by the simulators.
//!
//! Implemented directly on top of [`DetRng`] (rather than pulling in
//! `rand_distr`) so the workspace stays within its approved dependency set
//! and sampling remains bit-stable across versions.

use crate::rng::DetRng;

/// A distribution over `f64` that can be sampled with a [`DetRng`].
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut DetRng) -> f64;
}

/// Normal distribution `N(mean, std²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation; must be non-negative.
    pub std: f64,
}

impl Normal {
    /// Create a normal distribution. Panics if `std < 0`.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        Normal { mean, std }
    }

    /// Sample, then clamp to `[lo, hi]`. Useful for latency models where
    /// negative draws are meaningless.
    pub fn sample_clamped(&self, rng: &mut DetRng, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.mean + self.std * rng.standard_normal()
    }
}

/// Exponential distribution with the given rate `λ` (mean `1/λ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Rate parameter; must be positive.
    pub rate: f64,
}

impl Exponential {
    /// Create an exponential distribution. Panics if `rate <= 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Create from the distribution mean. Panics if `mean <= 0`.
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential { rate: 1.0 / mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u = rng.uniform().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }
}

/// Kumaraswamy distribution on `[0, 1]` with shape parameters `a`, `b`.
///
/// A close, cheap stand-in for the Beta distribution with a closed-form
/// inverse CDF: `x = (1 - (1 - u)^(1/b))^(1/a)`. We use it to model
/// detector confidence scores: `a > 1, b < a` skews mass towards 1
/// (confident detections), `a < 1` towards 0 (low-confidence noise).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Kumaraswamy {
    /// First shape parameter; must be positive.
    pub a: f64,
    /// Second shape parameter; must be positive.
    pub b: f64,
}

impl Kumaraswamy {
    /// Create a Kumaraswamy distribution. Panics unless both shapes are positive.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
        Kumaraswamy { a, b }
    }

    /// The distribution mean, `b·B(1 + 1/a, b)` computed via ln-gamma.
    pub fn mean(&self) -> f64 {
        let ln_beta =
            ln_gamma(1.0 + 1.0 / self.a) + ln_gamma(self.b) - ln_gamma(1.0 + 1.0 / self.a + self.b);
        self.b * ln_beta.exp()
    }
}

impl Distribution for Kumaraswamy {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let u = rng.uniform();
        (1.0 - (1.0 - u).powf(1.0 / self.b)).powf(1.0 / self.a)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Used by the contention workloads (hot-spot key selection) in the
/// transaction experiments. Sampling is by inversion over the precomputed
/// CDF, O(log n) per draw.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `1..=n`. Panics if `n == 0` or
    /// `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `[1, n]`.
    pub fn sample_rank(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF contains NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
/// Accurate to ~1e-13 over the positive reals, which is far more than the
/// simulators need.
pub fn ln_gamma(x: f64) -> f64 {
    #[allow(clippy::excessive_precision)] // verbatim Lanczos constants
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(1);
        let d = Normal::new(5.0, 2.0);
        let s: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = DetRng::new(2);
        let d = Normal::new(0.0, 10.0);
        for _ in 0..1_000 {
            let x = d.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_negative_std_panics() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(3);
        let d = Exponential::from_mean(4.0);
        let s: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&s);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_rate_constructor_matches() {
        let a = Exponential::new(0.25);
        let b = Exponential::from_mean(4.0);
        assert_eq!(a, b);
    }

    #[test]
    fn kumaraswamy_support_and_skew() {
        let mut rng = DetRng::new(4);
        let high = Kumaraswamy::new(5.0, 1.5); // mass near 1
        let low = Kumaraswamy::new(1.2, 4.0); // mass near 0
        let hs: Vec<f64> = (0..20_000).map(|_| high.sample(&mut rng)).collect();
        let ls: Vec<f64> = (0..20_000).map(|_| low.sample(&mut rng)).collect();
        assert!(hs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(ls.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let (hm, _) = moments(&hs);
        let (lm, _) = moments(&ls);
        assert!(hm > 0.7, "high-confidence mean {hm}");
        assert!(lm < 0.35, "low-confidence mean {lm}");
    }

    #[test]
    fn kumaraswamy_empirical_mean_matches_analytic() {
        let mut rng = DetRng::new(5);
        let d = Kumaraswamy::new(2.0, 3.0);
        let s: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&s);
        assert!(
            (mean - d.mean()).abs() < 0.005,
            "empirical {mean} analytic {}",
            d.mean()
        );
    }

    #[test]
    fn zipf_rank_bounds_and_skew() {
        let mut rng = DetRng::new(6);
        let d = Zipf::new(100, 1.0);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            let r = d.sample_rank(&mut rng);
            assert!((1..=100).contains(&r));
            counts[r - 1] += 1;
        }
        // Rank 1 should be drawn roughly twice as often as rank 2.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
        assert!(counts[0] > counts[50]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = DetRng::new(7);
        let d = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[d.sample_rank(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p {p}");
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }
}
