//! Summaries, online accumulators and histograms for experiment reporting.

use std::fmt;

use crate::time::SimDuration;

/// A batch summary of a sample: mean, standard deviation, extrema and
/// percentiles (nearest-rank).
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std: f64,
}

impl Summary {
    /// Summarize a slice. NaN values are rejected with a panic — they would
    /// silently poison orderings. Returns `None` for an empty slice.
    pub fn from_slice(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "summary input contains NaN"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Some(Summary {
            sorted,
            mean,
            std: var.sqrt(),
        })
    }

    /// Summarize a collection of durations, in milliseconds.
    pub fn from_durations(values: &[SimDuration]) -> Option<Summary> {
        let ms: Vec<f64> = values.iter().map(|d| d.as_millis_f64()).collect();
        Summary::from_slice(&ms)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("summary is never empty")
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = (p / 100.0 * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted[rank]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} p50={:.3} p99={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.std(),
            self.median(),
            self.percentile(99.0),
            self.max()
        )
    }
}

/// Welford online mean/variance accumulator; O(1) memory.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "OnlineStats observation is NaN");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a duration observation, in milliseconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `buckets` equal-width bins over `[lo, hi)`.
    /// Panics unless `lo < hi` and `buckets > 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Floating point can land exactly on the upper edge.
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bucket_low_edge, count)` pairs for reporting.
    pub fn iter_edges(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }
}

/// Compute precision, recall, and F-score from counts of true positives,
/// false positives and false negatives. Degenerate cases return zeros.
///
/// This is the `f(θL, θU) = 2pr/(p+r)` used throughout the paper's
/// evaluation (§3.4, §5).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
}

impl PrecisionRecall {
    /// Accumulate another set of counts.
    pub fn add(&mut self, other: PrecisionRecall) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// `tp / (tp + fp)`, or 0 when undefined.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`, or 0 when undefined.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall, or 0 when undefined.
    pub fn f_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.median(), 3.0); // nearest-rank of 50% over 4 items
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.percentile(99.0), 7.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn summary_from_durations_in_ms() {
        let s =
            Summary::from_durations(&[SimDuration::from_millis(10), SimDuration::from_millis(20)])
                .unwrap();
        assert_eq!(s.mean(), 15.0);
    }

    #[test]
    fn online_matches_batch() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut o = OnlineStats::new();
        for &v in &values {
            o.push(v);
        }
        let s = Summary::from_slice(&values).unwrap();
        assert!((o.mean() - s.mean()).abs() < 1e-12);
        assert!((o.std() - s.std()).abs() < 1e-12);
        assert_eq!(o.min(), Some(1.0));
        assert_eq!(o.max(), Some(9.0));
        assert_eq!(o.count(), 8);
    }

    #[test]
    fn online_empty_defaults() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.std(), 0.0);
        assert_eq!(o.min(), None);
        assert_eq!(o.max(), None);
    }

    #[test]
    fn online_merge_matches_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &all[..40] {
            a.push(v);
        }
        for &v in &all[40..] {
            b.push(v);
        }
        a.merge(&b);
        let mut seq = OnlineStats::new();
        for &v in &all {
            seq.push(v);
        }
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn online_merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(5.5);
        h.record(9.999);
        h.record(10.0);
        h.record(42.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(5), 1);
        assert_eq!(h.bucket(9), 1);
        assert_eq!(h.total(), 6);
        let edges: Vec<(f64, u64)> = h.iter_edges().collect();
        assert_eq!(edges.len(), 10);
        assert_eq!(edges[0], (0.0, 1));
    }

    #[test]
    fn precision_recall_f_score() {
        let pr = PrecisionRecall {
            tp: 8,
            fp: 2,
            fn_: 4,
        };
        assert!((pr.precision() - 0.8).abs() < 1e-12);
        assert!((pr.recall() - 8.0 / 12.0).abs() < 1e-12);
        let f = pr.f_score();
        let expect = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((f - expect).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_degenerate() {
        let pr = PrecisionRecall::default();
        assert_eq!(pr.precision(), 0.0);
        assert_eq!(pr.recall(), 0.0);
        assert_eq!(pr.f_score(), 0.0);
    }

    #[test]
    fn precision_recall_add() {
        let mut a = PrecisionRecall {
            tp: 1,
            fp: 2,
            fn_: 3,
        };
        a.add(PrecisionRecall {
            tp: 4,
            fp: 5,
            fn_: 6,
        });
        assert_eq!(
            a,
            PrecisionRecall {
                tp: 5,
                fp: 7,
                fn_: 9
            }
        );
    }
}
