//! Virtual time.
//!
//! All simulated experiments in the workspace use a virtual clock with
//! microsecond resolution. Microseconds comfortably cover the dynamic range
//! of the paper's measurements (sub-millisecond transaction commits up to
//! multi-second cloud detections) while keeping arithmetic in `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in microseconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the origin.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration scaled by a non-negative factor (e.g. a slowdown factor for
    /// a weaker edge machine).
    pub fn scale(self, factor: f64) -> Self {
        SimDuration::from_millis_f64(self.as_millis_f64() * factor.max(0.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{:.2}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let d = (t + SimDuration::from_millis(7)) - t;
        assert_eq!(d, SimDuration::from_millis(7));
        assert_eq!(
            t.saturating_since(SimTime::from_micros(9_000)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(18));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.scale(2.0), SimDuration::from_millis(200));
        assert_eq!(d.scale(0.5), SimDuration::from_millis(50));
        assert_eq!(d.scale(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.00s");
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "1.500ms");
    }

    #[test]
    fn float_views() {
        let d = SimDuration::from_micros(1_234_567);
        assert!((d.as_secs_f64() - 1.234567).abs() < 1e-9);
        assert!((d.as_millis_f64() - 1234.567).abs() < 1e-9);
        let t = SimTime::from_micros(2_000_000);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
