//! Discrete-event simulation kernel.
//!
//! [`Simulator<W>`] owns an arbitrary world state `W` and an event queue.
//! Event handlers receive `(&mut W, &mut Scheduler<W>)` so they can both
//! mutate the world and schedule follow-up events. Ties in event time are
//! broken by insertion order, which keeps runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event handler: runs once at its scheduled time.
pub type Handler<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    handler: Handler<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event queue and clock, passed to handlers so they can schedule more work.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<W>>,
}

impl<W> Scheduler<W> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `handler` to run at the absolute time `at`.
    ///
    /// Panics if `at` is in the past — simulated causality must not run
    /// backwards.
    pub fn at(&mut self, at: SimTime, handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            handler: Box::new(handler),
        });
    }

    /// Schedule `handler` to run after `delay`.
    pub fn after(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.at(self.now + delay, handler);
    }

    /// Schedule `handler` to run at the current time, after already-queued
    /// events at this time.
    pub fn immediately(&mut self, handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.at(self.now, handler);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    fn pop(&mut self) -> Option<Entry<W>> {
        self.heap.pop()
    }
}

/// A discrete-event simulator over a world state `W`.
pub struct Simulator<W> {
    world: W,
    sched: Scheduler<W>,
    processed: u64,
}

impl<W> Simulator<W> {
    /// Create a simulator owning `world`, with an empty event queue at t=0.
    pub fn new(world: W) -> Self {
        Simulator {
            world,
            sched: Scheduler::new(),
            processed: 0,
        }
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. for seeding initial state).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Access the scheduler to seed initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Run until the event queue drains; returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run events with `time <= horizon`; the clock never passes `horizon`.
    /// Returns the final virtual time.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(entry) = self.sched.pop() {
            if entry.at > horizon {
                // Put it back: it belongs to a future run.
                self.sched.heap.push(entry);
                self.sched.now = horizon;
                break;
            }
            self.sched.now = entry.at;
            self.processed += 1;
            (entry.handler)(&mut self.world, &mut self.sched);
        }
        self.sched.now
    }

    /// Consume the simulator and return the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Vec::<u32>::new());
        sim.scheduler()
            .at(SimTime::from_micros(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.scheduler()
            .at(SimTime::from_micros(10), |w, _| w.push(1));
        sim.scheduler()
            .at(SimTime::from_micros(20), |w, _| w.push(2));
        sim.run();
        assert_eq!(sim.world(), &vec![1, 2, 3]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new(Vec::<u32>::new());
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            sim.scheduler().at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run();
        assert_eq!(sim.world(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_chains() {
        let mut sim = Simulator::new(0u64);
        fn tick(w: &mut u64, s: &mut Scheduler<u64>) {
            *w += 1;
            if *w < 100 {
                s.after(SimDuration::from_micros(7), tick);
            }
        }
        sim.scheduler().immediately(tick);
        let end = sim.run();
        assert_eq!(*sim.world(), 100);
        assert_eq!(end, SimTime::from_micros(99 * 7));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new(Vec::<u64>::new());
        for i in 1..=10 {
            sim.scheduler()
                .at(SimTime::from_micros(i * 10), move |w: &mut Vec<u64>, _| {
                    w.push(i)
                });
        }
        let t = sim.run_until(SimTime::from_micros(45));
        assert_eq!(sim.world(), &vec![1, 2, 3, 4]);
        assert_eq!(t, SimTime::from_micros(45));
        // Remaining events still run afterwards.
        sim.run();
        assert_eq!(sim.world().len(), 10);
    }

    #[test]
    fn now_advances_with_events() {
        let mut sim = Simulator::new(Vec::<SimTime>::new());
        sim.scheduler()
            .at(SimTime::from_micros(100), |w: &mut Vec<SimTime>, s| {
                w.push(s.now());
                s.after(SimDuration::from_micros(50), |w: &mut Vec<SimTime>, s| {
                    w.push(s.now())
                });
            });
        sim.run();
        assert_eq!(
            sim.world(),
            &vec![SimTime::from_micros(100), SimTime::from_micros(150)]
        );
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new(());
        sim.scheduler().at(SimTime::from_micros(10), |_, s| {
            s.at(SimTime::from_micros(5), |_, _| {});
        });
        sim.run();
    }

    #[test]
    fn pending_counts_queue() {
        let mut sim = Simulator::new(());
        assert_eq!(sim.scheduler().pending(), 0);
        sim.scheduler()
            .after(SimDuration::from_millis(1), |_, _| {});
        sim.scheduler()
            .after(SimDuration::from_millis(2), |_, _| {});
        assert_eq!(sim.scheduler().pending(), 2);
        sim.run();
        assert_eq!(sim.scheduler().pending(), 0);
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Simulator::new(41u32);
        sim.scheduler().immediately(|w: &mut u32, _| *w += 1);
        sim.run();
        assert_eq!(sim.into_world(), 42);
    }
}
