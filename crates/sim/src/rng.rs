//! Deterministic, forkable random number generation.
//!
//! Every stochastic component in the workspace (scene generation, detector
//! simulation, network jitter, workload key choice) draws from a [`DetRng`]
//! seeded from the experiment configuration. [`DetRng::fork`] derives an
//! independent child stream from a label, which makes results a pure
//! function of `(seed, label path)` — e.g. the detections for frame 17 are
//! identical whether the optimizer evaluates one threshold pair or a hundred.

/// SplitMix64 step, used to mix seeds and stream labels into child seeds
/// and to expand a 64-bit seed into the xoshiro state. This is the standard
/// seed-mixing finalizer from Vigna's splitmix64.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator with labelled forking.
///
/// ```
/// use croesus_sim::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());          // same seed, same stream
/// let mut child = a.fork_named("detections");      // independent substream
/// assert!(child.uniform() < 1.0);
/// ```
///
/// The core generator is xoshiro256++ (Blackman & Vigna), implemented
/// directly so streams are bit-stable across dependency upgrades and the
/// generator stays `Clone` (snapshotting a stream is occasionally useful in
/// tests).
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed with splitmix64 as recommended by the xoshiro
        // authors; guarantees a non-zero state.
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(s);
        }
        DetRng {
            seed,
            state,
            spare_normal: None,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator identified by `stream`.
    ///
    /// Forking does not consume randomness from `self`, so the set of forks
    /// taken from a generator never perturbs its own stream.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(splitmix64(
            self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)),
        ))
    }

    /// Derive a child generator from a string label.
    pub fn fork_named(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.fork(h)
    }

    /// Uniform `u64` — one step of xoshiro256++.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the bias is at most `n/2⁶⁴`,
    /// immaterial for simulation workloads.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::index requires a non-empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "DetRng::int_range requires hi > lo");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal via the Box–Muller transform (cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = DetRng::new(42);
        let mut child1 = parent.fork(5);
        let mut parent2 = DetRng::new(42);
        parent2.next_u64(); // consume from a copy
        let mut child2 = parent2.fork(5);
        // fork() derives only from the seed, so consumption cannot matter,
        // but assert the contract explicitly.
        for _ in 0..10 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn forks_with_distinct_streams_differ() {
        let parent = DetRng::new(42);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn named_forks_are_stable_and_distinct() {
        let parent = DetRng::new(9);
        let mut a1 = parent.fork_named("edge");
        let mut a2 = parent.fork_named("edge");
        let mut b = parent.fork_named("cloud");
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_respects_bounds_and_degenerate_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1_000 {
            let u = r.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&u));
        }
        assert_eq!(r.uniform_range(4.0, 4.0), 4.0);
        assert_eq!(r.uniform_range(4.0, 1.0), 4.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut r = DetRng::new(11);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = DetRng::new(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn index_and_choose_cover_range() {
        let mut r = DetRng::new(19);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.index(3)] = true;
            let _ = r.choose(&items);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        DetRng::new(1).index(0);
    }
}
