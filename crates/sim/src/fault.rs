//! Deterministic fault injection for chaos runs.
//!
//! A [`FaultPlan`] is a replayable schedule of failures: each
//! [`FaultEvent`] names a frame, an edge, and what happens to it. Plans
//! are either scripted (the builder API) or generated from a seed via the
//! same [`DetRng`] the rest of the simulation uses — so a chaos run is a
//! pure function of `(workload seed, fault seed)` and any failure it
//! uncovers replays exactly.
//!
//! The [`FaultInjector`] drains the plan frame by frame; the fleet driver
//! (in `croesus-core`) owns the interpretation of each kind:
//!
//! * **Kill** — process death. In-memory state and the unsynced WAL tail
//!   are lost; only synced bytes survive. Triggers failover once the
//!   failure detector times the edge out.
//! * **Stall** — the node freezes (GC pause, overload): it misses
//!   heartbeats but loses nothing. Past the heartbeat timeout it is
//!   indistinguishable from dead and gets deposed; on waking it must be
//!   fenced, not resumed.
//! * **Partition** — the edge→cloud uplink drops for a while. Shipping
//!   and cloud validation stall; the edge itself keeps serving and
//!   finalizes locally (degraded mode). Crucially *not* a failover
//!   trigger here: the authoritative copy is still alive.
//! * **Resurrect** — a killed edge restarts from its durable log.
//! * **CorruptShipment** — one shipped batch is damaged in flight; the
//!   replica must detect (CRC/decode) and refetch.

use crate::rng::DetRng;

/// What happens to an edge (or its uplink).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Process death: everything unsynced is lost.
    Kill,
    /// Freeze for this many frames; no state is lost.
    Stall {
        /// Frames the node stays frozen.
        frames: u64,
    },
    /// Cut the edge→cloud uplink for this many frames.
    Partition {
        /// Frames the uplink stays down.
        frames: u64,
    },
    /// Restart a killed edge from its durable log.
    Resurrect,
    /// Damage the next shipped WAL batch in flight (the source stays
    /// pristine; the replica detects and refetches).
    CorruptShipment,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Frame index at which the fault fires (before the frame is
    /// processed).
    pub frame: u64,
    /// The targeted edge.
    pub edge: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A replayable fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the control run).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Script one fault (builder style).
    #[must_use]
    pub fn at(mut self, frame: u64, edge: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { frame, edge, kind });
        self
    }

    /// Generate a plan from a seed: roughly `intensity` faults per edge
    /// per frame (Bernoulli), kinds mixed across kill/stall/partition/
    /// corruption, each kill followed by a resurrect a few frames later.
    /// An edge gets no new fault while a previous one is still playing
    /// out, so generated schedules stay interpretable.
    #[must_use]
    pub fn seeded(seed: u64, frames: u64, edges: usize, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity is a probability"
        );
        let mut rng = DetRng::new(seed).fork_named("fault-plan");
        let mut plan = FaultPlan::new();
        // Frame index until which each edge is busy with an earlier fault.
        let mut busy_until = vec![0u64; edges];
        for frame in 0..frames {
            for (edge, busy) in busy_until.iter_mut().enumerate() {
                if frame < *busy || !rng.bernoulli(intensity) {
                    continue;
                }
                let kind = match rng.index(4) {
                    0 => FaultKind::Kill,
                    1 => FaultKind::Stall {
                        frames: rng.int_range(2, 6),
                    },
                    2 => FaultKind::Partition {
                        frames: rng.int_range(2, 8),
                    },
                    _ => FaultKind::CorruptShipment,
                };
                plan.events.push(FaultEvent { frame, edge, kind });
                *busy = match kind {
                    FaultKind::Kill => {
                        let back = frame + rng.int_range(3, 9);
                        plan.events.push(FaultEvent {
                            frame: back,
                            edge,
                            kind: FaultKind::Resurrect,
                        });
                        back + 1
                    }
                    FaultKind::Stall { frames } | FaultKind::Partition { frames } => {
                        frame + frames + 1
                    }
                    FaultKind::Resurrect | FaultKind::CorruptShipment => frame + 1,
                };
            }
        }
        plan
    }

    /// The scheduled events (scripted order; the injector sorts by frame).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Drains a [`FaultPlan`] frame by frame.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultInjector {
    /// Build over a plan; events are sorted by frame (stable, so two
    /// faults scripted at the same frame fire in scripted order).
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let mut events = plan.events;
        events.sort_by_key(|e| e.frame);
        FaultInjector { events, cursor: 0 }
    }

    /// Every event due at or before `frame` that has not fired yet.
    pub fn take_due(&mut self, frame: u64) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].frame <= frame {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// Events not yet fired.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 100, 4, 0.05);
        let b = FaultPlan::seeded(7, 100, 4, 0.05);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty(), "5% over 400 edge-frames fires something");
        let c = FaultPlan::seeded(8, 100, 4, 0.05);
        assert_ne!(a.events(), c.events(), "a different seed differs");
    }

    #[test]
    fn every_seeded_kill_gets_a_resurrect() {
        let plan = FaultPlan::seeded(42, 200, 3, 0.1);
        for e in plan.events() {
            if e.kind == FaultKind::Kill {
                assert!(
                    plan.events().iter().any(|r| r.edge == e.edge
                        && r.kind == FaultKind::Resurrect
                        && r.frame > e.frame),
                    "kill at frame {} has no resurrect",
                    e.frame
                );
            }
        }
    }

    #[test]
    fn injector_drains_in_frame_order() {
        let plan = FaultPlan::new()
            .at(5, 1, FaultKind::Kill)
            .at(2, 0, FaultKind::CorruptShipment)
            .at(5, 0, FaultKind::Stall { frames: 2 });
        let mut inj = FaultInjector::new(plan);
        assert!(inj.take_due(1).is_empty());
        let due = inj.take_due(2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::CorruptShipment);
        let due = inj.take_due(6);
        assert_eq!(due.len(), 2, "both frame-5 events fire together");
        assert_eq!(due[0].edge, 1, "stable order preserves script order");
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn seeded_faults_do_not_overlap_per_edge() {
        let plan = FaultPlan::seeded(3, 300, 2, 0.2);
        for edge in 0..2 {
            let mut busy_until = 0u64;
            for e in plan.events().iter().filter(|e| e.edge == edge) {
                if e.kind == FaultKind::Resurrect {
                    continue; // paired with its kill, inside the busy span
                }
                assert!(
                    e.frame >= busy_until,
                    "edge {edge}: fault at {} overlaps a fault busy until {busy_until}",
                    e.frame
                );
                busy_until = match e.kind {
                    FaultKind::Stall { frames } | FaultKind::Partition { frames } => {
                        e.frame + frames + 1
                    }
                    _ => e.frame,
                };
            }
        }
    }
}
