//! Minimal API-compatible stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of `parking_lot` the workspace uses — [`Mutex`],
//! [`RwLock`], [`Condvar`] with non-poisoning guards returned directly from
//! `lock()`/`read()`/`write()` — implemented over `std::sync`. Poisoned
//! locks are transparently recovered (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive, parking_lot style: `lock()` returns the
/// guard directly (no `Result`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the inner std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock, parking_lot style.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`], parking_lot style:
/// `wait` takes the guard by `&mut` rather than by value.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
