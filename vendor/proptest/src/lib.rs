//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! `Strategy` trait with `prop_map`, range/tuple/`Just` strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, `any::<T>()`, the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!` macros. Cases are generated from a deterministic
//! SplitMix64 stream (no shrinking — failures report the generated case
//! index; re-running reproduces it exactly).
//!
//! `PROPTEST_CASES` overrides the default of 64 cases per property.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value from the RNG stream.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Box a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from boxed alternatives. Panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let off = (rng.next_u64() as i128).rem_euclid(hi - lo + 1);
                    (lo + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (unit as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy for a full-range primitive (used by [`crate::any`]).
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded RNG; the same seed reproduces the same case sequence.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Cases per property: `PROPTEST_CASES` env var, default 64.
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::{Arbitrary, Strategy};
    use crate::test_runner::TestRng;

    /// Any boolean.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            bool::arbitrary(rng)
        }
    }

    /// The canonical full-range boolean strategy.
    pub const ANY: AnyBool = AnyBool;
}

/// Full-range strategy for a primitive type.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Mirrors `proptest::prop` paths like `prop::collection::vec`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property; panics with the usual message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skip the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define `#[test]` functions that run their body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            // Seed derived from the test name so properties are independent
            // yet reproducible run-to-run.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                });
            let mut rng = $crate::test_runner::TestRng::new(seed);
            let cases = $crate::test_runner::cases();
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    let run = move || $body;
                    run();
                }));
                if let Err(e) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {:#x})",
                        case + 1, cases, stringify!($name), seed
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::new_value(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = Strategy::new_value(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1u64), Just(2), Just(3)].prop_map(|v| v * 10);
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..100 {
            let v = Strategy::new_value(&s, &mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_skips(a in 0u64..10, flag in prop::bool::ANY) {
            prop_assume!(flag);
            prop_assert!(a < 10);
        }

        #[test]
        fn any_is_callable(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }
}
