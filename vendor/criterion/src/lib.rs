//! Minimal API-compatible stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop: warm up for `warm_up_time`, then sample
//! batches until `measurement_time` elapses and report the mean ns/iter.
//!
//! Two environment variables tune runs:
//!
//! * `CRITERION_QUICK=1` — shrink warm-up/measurement to ~10%/25% of the
//!   configured times (CI smoke mode).
//! * `CRITERION_JSON=<path>` — append one JSON line per benchmark:
//!   `{"id": "group/name", "ns_per_iter": f64, "iters": u64}`.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (ignored by this stand-in beyond
/// API compatibility: every batch re-runs setup exactly once per iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// One benchmark's measurement, as recorded by [`Bencher`].
#[derive(Clone, Debug)]
pub struct Sample {
    /// `group/name` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Parse command-line configuration. This stand-in only recognises the
    /// environment (`CRITERION_QUICK`), ignoring harness CLI flags such as
    /// `--bench` that cargo passes to `harness = false` targets.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the default measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (measurement_time, warm_up_time, sample_size) =
            (self.measurement_time, self.warm_up_time, self.sample_size);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time,
            warm_up_time,
            sample_size,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how long to measure each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set how long to warm up each benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the target sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        let (warm, meas) = if quick {
            (self.warm_up_time / 10, self.measurement_time / 4)
        } else {
            (self.warm_up_time, self.measurement_time)
        };
        let mut b = Bencher {
            warm_up_time: warm,
            measurement_time: meas,
            total_ns: 0,
            total_iters: 0,
        };
        f(&mut b);
        let ns_per_iter = if b.total_iters == 0 {
            0.0
        } else {
            b.total_ns as f64 / b.total_iters as f64
        };
        let sample = Sample {
            id: id.clone(),
            ns_per_iter,
            iters: b.total_iters,
        };
        report(&sample);
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn report(s: &Sample) {
    let per_sec = if s.ns_per_iter > 0.0 {
        1e9 / s.ns_per_iter
    } else {
        0.0
    };
    println!(
        "{:<40} time: {:>12.1} ns/iter   ({:>10.0} iters/s, n={})",
        s.id, s.ns_per_iter, per_sec, s.iters
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": \"{}\", \"ns_per_iter\": {:.3}, \"iters\": {}}}",
                s.id, s.ns_per_iter, s.iters
            );
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    total_ns: u128,
    total_iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        // Measurement: sample in growing batches until the budget is spent.
        let start = Instant::now();
        let mut batch = 1u64;
        while start.elapsed() < self.measurement_time {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total_ns += t0.elapsed().as_nanos();
            self.total_iters += batch;
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
    }

    /// Measure `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < self.measurement_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total_ns += t0.elapsed().as_nanos();
            self.total_iters += 1;
        }
    }
}

/// Group benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        g.bench_function("batched", |b| {
            b.iter_batched(Vec::<u64>::new, |mut v| v.push(1), BatchSize::SmallInput)
        });
        g.finish();
    }
}
